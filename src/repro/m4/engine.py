"""The m4-style macro expansion engine.

This is the second stage of the Force compilation pipeline (§4.3): the
sed stage turns Force statements into parameterized function-macro calls
and this engine expands them — twice over, conceptually, since the
machine-independent macros themselves expand into machine-dependent
macro calls which are expanded in the same rescanning pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro._util.errors import MacroError
from repro.m4.evalexpr import eval_expression
from repro.m4.reader import PushbackReader

_WORD_START = set("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_WORD_CHARS = _WORD_START | set("0123456789")


@dataclass
class M4Options:
    """Tunable limits and quote characters for an :class:`M4Processor`."""

    open_quote: str = "`"
    close_quote: str = "'"
    #: Hard cap on pending (unscanned) input, to catch runaway recursion.
    max_pending: int = 1_000_000
    #: Hard cap on total output size.
    max_output: int = 16_000_000
    #: Hard cap on scan-loop iterations, catching livelocks where a
    #: macro's expansion re-invokes it without growing pending input
    #: (e.g. a macro whose output contains its own unquoted name).
    max_iterations: int = 20_000_000


@dataclass
class _Definition:
    """One entry on a macro's definition stack (pushdef support)."""

    body: str | None = None
    builtin: Callable | None = None


class M4Processor:
    """A reusable macro processor instance.

    Typical use::

        m4 = M4Processor()
        m4.define("greet", "hello $1")
        m4.process("greet(world)")   # -> "hello world"

    Definitions persist across :meth:`process` calls, which is how the
    Force pipeline layers machine-dependent definitions under the
    machine-independent library before expanding the user program.
    """

    def __init__(self, options: M4Options | None = None) -> None:
        self.options = options or M4Options()
        self._open = self.options.open_quote
        self._close = self.options.close_quote
        # name -> stack of definitions (top = last)
        self._macros: dict[str, list[_Definition]] = {}
        self._diversions: dict[int, list[str]] = {}
        self._current_diversion = 0
        self._includes: dict[str, str] = {}
        self._install_builtins()

    # ------------------------------------------------------------------
    # public definition API
    # ------------------------------------------------------------------
    def define(self, name: str, body: str) -> None:
        """Define ``name`` to expand to ``body`` (replacing the top def)."""
        self._check_name(name)
        stack = self._macros.setdefault(name, [])
        if stack:
            stack[-1] = _Definition(body=body)
        else:
            stack.append(_Definition(body=body))

    def pushdef(self, name: str, body: str) -> None:
        """Push a new definition, shadowing any previous one."""
        self._check_name(name)
        self._macros.setdefault(name, []).append(_Definition(body=body))

    def popdef(self, name: str) -> None:
        """Remove the top definition of ``name`` (no-op if undefined)."""
        stack = self._macros.get(name)
        if stack:
            stack.pop()
            if not stack:
                del self._macros[name]

    def undefine(self, name: str) -> None:
        """Remove every definition of ``name``."""
        self._macros.pop(name, None)

    def is_defined(self, name: str) -> bool:
        return name in self._macros

    def definition_of(self, name: str) -> str | None:
        """Return the body of the top definition, or None."""
        stack = self._macros.get(name)
        if not stack:
            return None
        return stack[-1].body

    def define_builtin(self, name: str, func: Callable) -> None:
        """Register a Python-implemented macro.

        ``func(processor, args)`` receives the expanded argument list
        (``args[0]`` is the macro name) and returns replacement text,
        which is rescanned like any other expansion.
        """
        self._check_name(name)
        self._macros.setdefault(name, []).append(_Definition(builtin=func))

    def add_include(self, name: str, text: str) -> None:
        """Make ``include(name)`` available (no filesystem access)."""
        self._includes[name] = text

    def load_definitions(self, text: str) -> None:
        """Process a definitions-only file, discarding its output.

        Raises :class:`MacroError` if the definitions produce non-blank
        output, which almost always indicates a quoting mistake in a
        macro library file.
        """
        residue = self.process(text)
        if residue.strip():
            snippet = residue.strip()[:200]
            raise MacroError(
                f"definition file produced unexpected output: {snippet!r}")

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def process(self, text: str) -> str:
        """Expand ``text`` and return the result (diversion 0 + output)."""
        reader = PushbackReader(text)
        out: list[str] = []
        out_len = 0
        iterations = 0
        while True:
            iterations += 1
            if iterations > self.options.max_iterations:
                raise MacroError("scan iteration limit exceeded (livelock: "
                                 "does a macro's output contain its own "
                                 "unquoted name?)")
            piece = self._scan_piece(reader)
            if piece is None:
                break
            if piece:
                if self._current_diversion == 0:
                    out.append(piece)
                    out_len += len(piece)
                    if out_len > self.options.max_output:
                        raise MacroError("output size limit exceeded "
                                         "(runaway macro expansion?)")
                elif self._current_diversion > 0:
                    self._diversions.setdefault(
                        self._current_diversion, []).append(piece)
                # diversion -1 discards
            if reader.pending_length() > self.options.max_pending:
                raise MacroError("pending input limit exceeded "
                                 "(runaway macro recursion?)")
        return "".join(out)

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------
    def _scan_piece(self, reader: PushbackReader) -> str | None:
        """Scan one lexical item; return output text or None at EOF."""
        if reader.at_eof():
            return None
        # Quoted string: strip one quote level, emit contents verbatim.
        if reader.match(self._open):
            return self._read_quoted(reader)
        ch = reader.peek()
        if ch in _WORD_START:
            word = reader.read_while(lambda c: c in _WORD_CHARS)
            if word in self._macros:
                self._invoke(word, reader)
                return ""
            return word
        return reader.next()

    def _read_quoted(self, reader: PushbackReader) -> str:
        """Read to the matching close quote; nested quotes are kept."""
        depth = 1
        out: list[str] = []
        while True:
            if reader.at_eof():
                raise MacroError("unbalanced quotes (EOF inside quoted "
                                 "string)")
            if reader.match(self._open):
                depth += 1
                out.append(self._open)
                continue
            if reader.match(self._close):
                depth -= 1
                if depth == 0:
                    return "".join(out)
                out.append(self._close)
                continue
            out.append(reader.next())

    def _invoke(self, name: str, reader: PushbackReader) -> None:
        """Expand macro ``name``; result is pushed back for rescanning."""
        args = [name]
        if reader.peek() == "(":
            reader.next()
            args += self._collect_args(reader)
        definition = self._macros[name][-1]
        if definition.builtin is not None:
            replacement = definition.builtin(self, args)
            if replacement is _DNL:
                # dnl: discard input through the next newline.
                while True:
                    ch = reader.next()
                    if ch == "" or ch == "\n":
                        return
                return
        else:
            replacement = self._substitute(definition.body or "", args)
        if replacement:
            reader.push(replacement)

    def _collect_args(self, reader: PushbackReader) -> list[str]:
        """Collect arguments up to the balancing ')', expanding as we go.

        This is m4's real semantics: macros encountered while collecting
        are expanded immediately (their output pushed back onto the
        input), so an expansion may contribute commas and parentheses to
        the argument structure — the ``shift($@)`` recursion idiom
        depends on it.  Quoted text contributes its contents verbatim
        (one quote level stripped, inner macros protected).  Leading
        unquoted whitespace of each argument is skipped.
        """
        args: list[str] = []
        current: list[str] = []
        depth = 0
        at_arg_start = True
        iterations = 0
        while True:
            iterations += 1
            if iterations > self.options.max_iterations:
                raise MacroError("iteration limit exceeded while "
                                 "collecting macro arguments")
            if reader.pending_length() > self.options.max_pending:
                raise MacroError("pending input limit exceeded while "
                                 "collecting macro arguments")
            if reader.at_eof():
                raise MacroError("EOF while collecting macro arguments")
            if at_arg_start:
                ch = reader.peek()
                if ch in " \t\n":
                    reader.next()
                    continue
                at_arg_start = False
            if reader.match(self._open):
                current.append(self._read_quoted(reader))
                continue
            ch = reader.peek()
            if ch in _WORD_START:
                word = reader.read_while(lambda c: c in _WORD_CHARS)
                if word in self._macros:
                    self._invoke(word, reader)
                else:
                    current.append(word)
                continue
            ch = reader.next()
            if ch == "(":
                depth += 1
            elif ch == ")":
                if depth == 0:
                    args.append("".join(current))
                    return args
                depth -= 1
            elif ch == "," and depth == 0:
                args.append("".join(current))
                current = []
                at_arg_start = True
                continue
            current.append(ch)

    # ------------------------------------------------------------------
    # body substitution
    # ------------------------------------------------------------------
    def _substitute(self, body: str, args: list[str]) -> str:
        out: list[str] = []
        i = 0
        n = len(body)
        while i < n:
            ch = body[i]
            if ch == "$" and i + 1 < n:
                nxt = body[i + 1]
                if nxt.isdigit():
                    idx = ord(nxt) - ord("0")
                    if idx < len(args):
                        out.append(args[idx])
                    i += 2
                    continue
                if nxt == "#":
                    out.append(str(len(args) - 1))
                    i += 2
                    continue
                if nxt == "*":
                    out.append(",".join(args[1:]))
                    i += 2
                    continue
                if nxt == "@":
                    quoted = [self._open + a + self._close for a in args[1:]]
                    out.append(",".join(quoted))
                    i += 2
                    continue
            out.append(ch)
            i += 1
        return "".join(out)

    # ------------------------------------------------------------------
    # builtins
    # ------------------------------------------------------------------
    def _install_builtins(self) -> None:
        builtins: dict[str, Callable] = {
            "define": _bi_define,
            "undefine": _bi_undefine,
            "pushdef": _bi_pushdef,
            "popdef": _bi_popdef,
            "defn": _bi_defn,
            "ifdef": _bi_ifdef,
            "ifelse": _bi_ifelse,
            "incr": _bi_incr,
            "decr": _bi_decr,
            "eval": _bi_eval,
            "len": _bi_len,
            "index": _bi_index,
            "substr": _bi_substr,
            "translit": _bi_translit,
            "dnl": _bi_dnl,
            "changequote": _bi_changequote,
            "divert": _bi_divert,
            "undivert": _bi_undivert,
            "divnum": _bi_divnum,
            "include": _bi_include,
            "shift": _bi_shift,
            "errprint": _bi_errprint,
            "m4exit": _bi_m4exit,
        }
        for name, func in builtins.items():
            self.define_builtin(name, func)

    # helpers used by builtins ------------------------------------------
    def _check_name(self, name: str) -> None:
        if not name or name[0] not in _WORD_START or \
                any(c not in _WORD_CHARS for c in name):
            raise MacroError(f"invalid macro name: {name!r}")

    def quote(self, text: str) -> str:
        """Wrap ``text`` in one level of the current quote characters."""
        return f"{self._open}{text}{self._close}"


# ----------------------------------------------------------------------
# builtin implementations (module-level so the engine stays readable)
# ----------------------------------------------------------------------
def _arg(args: list[str], i: int, default: str = "") -> str:
    return args[i] if i < len(args) else default


def _bi_define(m4: M4Processor, args: list[str]) -> str:
    if len(args) < 2:
        raise MacroError("define: missing macro name")
    m4.define(_arg(args, 1), _arg(args, 2))
    return ""


def _bi_undefine(m4: M4Processor, args: list[str]) -> str:
    for name in args[1:]:
        m4.undefine(name)
    return ""


def _bi_pushdef(m4: M4Processor, args: list[str]) -> str:
    if len(args) < 2:
        raise MacroError("pushdef: missing macro name")
    m4.pushdef(_arg(args, 1), _arg(args, 2))
    return ""


def _bi_popdef(m4: M4Processor, args: list[str]) -> str:
    for name in args[1:]:
        m4.popdef(name)
    return ""


def _bi_defn(m4: M4Processor, args: list[str]) -> str:
    body = m4.definition_of(_arg(args, 1))
    if body is None:
        return ""
    return m4.quote(body)


def _bi_ifdef(m4: M4Processor, args: list[str]) -> str:
    if m4.is_defined(_arg(args, 1)):
        return _arg(args, 2)
    return _arg(args, 3)


def _bi_ifelse(m4: M4Processor, args: list[str]) -> str:
    # ifelse(a, b, if-equal [, a2, b2, if-equal2]... [, default])
    rest = args[1:]
    while True:
        if len(rest) <= 2:
            return ""
        if rest[0] == rest[1]:
            return rest[2]
        if len(rest) <= 4:
            return _arg(rest, 3)
        rest = rest[3:]


def _bi_incr(m4: M4Processor, args: list[str]) -> str:
    return str(int(_arg(args, 1, "0") or "0") + 1)


def _bi_decr(m4: M4Processor, args: list[str]) -> str:
    return str(int(_arg(args, 1, "0") or "0") - 1)


def _bi_eval(m4: M4Processor, args: list[str]) -> str:
    return str(eval_expression(_arg(args, 1, "0")))


def _bi_len(m4: M4Processor, args: list[str]) -> str:
    return str(len(_arg(args, 1)))


def _bi_index(m4: M4Processor, args: list[str]) -> str:
    return str(_arg(args, 1).find(_arg(args, 2)))


def _bi_substr(m4: M4Processor, args: list[str]) -> str:
    text = _arg(args, 1)
    try:
        start = int(_arg(args, 2, "0") or "0")
    except ValueError as exc:
        raise MacroError(f"substr: bad start {_arg(args, 2)!r}") from exc
    if len(args) > 3 and args[3].strip():
        try:
            length = int(args[3])
        except ValueError as exc:
            raise MacroError(f"substr: bad length {args[3]!r}") from exc
        return text[start:start + length]
    return text[start:]


def _bi_translit(m4: M4Processor, args: list[str]) -> str:
    text, src, dst = _arg(args, 1), _arg(args, 2), _arg(args, 3)
    src = _expand_ranges(src)
    dst = _expand_ranges(dst)
    table: dict[int, int | None] = {}
    for i, ch in enumerate(src):
        if ch in table:
            continue
        table[ord(ch)] = ord(dst[i]) if i < len(dst) else None
    return text.translate(table)


def _expand_ranges(spec: str) -> str:
    """Expand ``a-z`` style ranges in a translit character set."""
    out: list[str] = []
    i = 0
    while i < len(spec):
        if i + 2 < len(spec) and spec[i + 1] == "-":
            lo, hi = ord(spec[i]), ord(spec[i + 2])
            step = 1 if hi >= lo else -1
            out.extend(chr(c) for c in range(lo, hi + step, step))
            i += 3
        else:
            out.append(spec[i])
            i += 1
    return "".join(out)


class _DnlMarker:
    """Unique sentinel returned by the dnl builtin (see _invoke)."""


_DNL = _DnlMarker()


def _bi_dnl(m4: M4Processor, args: list[str]) -> _DnlMarker:
    # The engine's _invoke recognises this sentinel and discards input
    # through the next newline (builtins have no reader access).
    return _DNL


def _bi_changequote(m4: M4Processor, args: list[str]) -> str:
    m4._open = _arg(args, 1, "`") or "`"
    m4._close = _arg(args, 2, "'") or "'"
    return ""


def _bi_divert(m4: M4Processor, args: list[str]) -> str:
    text = _arg(args, 1, "0").strip() or "0"
    try:
        n = int(text)
    except ValueError as exc:
        raise MacroError(f"divert: bad diversion {text!r}") from exc
    if n < -1 or n > 9:
        raise MacroError(f"divert: diversion {n} out of range [-1, 9]")
    m4._current_diversion = n
    return ""


def _bi_undivert(m4: M4Processor, args: list[str]) -> str:
    if len(args) > 1 and any(a.strip() for a in args[1:]):
        numbers = [int(a) for a in args[1:] if a.strip()]
    else:
        numbers = sorted(m4._diversions)
    out: list[str] = []
    for n in numbers:
        out.extend(m4._diversions.pop(n, []))
    # Undiverted text is NOT rescanned in m4; emit it via a quote so the
    # rescan treats it as literal text.
    return m4.quote("".join(out)) if out else ""


def _bi_divnum(m4: M4Processor, args: list[str]) -> str:
    return str(m4._current_diversion)


def _bi_include(m4: M4Processor, args: list[str]) -> str:
    name = _arg(args, 1)
    if name not in m4._includes:
        raise MacroError(f"include: unknown file {name!r}")
    return m4._includes[name]


def _bi_shift(m4: M4Processor, args: list[str]) -> str:
    rest = args[2:]
    return ",".join(m4.quote(a) for a in rest)


def _bi_errprint(m4: M4Processor, args: list[str]) -> str:
    import sys
    print(",".join(args[1:]), file=sys.stderr)
    return ""


def _bi_m4exit(m4: M4Processor, args: list[str]) -> str:
    raise MacroError(f"m4exit called with status {_arg(args, 1, '0')}")
