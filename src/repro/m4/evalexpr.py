"""Integer expression evaluator for the m4 ``eval`` builtin.

Implements the m4 operator set on Python integers with C-like semantics:
``|| && | ^ & == != < <= > >= << >> + - * / % ** ! ~`` and unary minus,
with parentheses.  Division truncates toward zero as in C (and m4).
"""

from __future__ import annotations

from repro._util.errors import MacroError


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # ----- lexer helpers -------------------------------------------------
    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self, n: int = 1) -> str:
        return self.text[self.pos:self.pos + n]

    def _take(self, token: str) -> bool:
        self._skip_ws()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    # ----- grammar (precedence climbing, lowest first) -------------------
    def parse(self) -> int:
        value = self._or()
        self._skip_ws()
        if self.pos != len(self.text):
            raise MacroError(
                f"eval: trailing garbage at column {self.pos} in {self.text!r}")
        return value

    def _or(self) -> int:
        left = self._and()
        while self._take("||"):
            right = self._and()
            left = 1 if (left or right) else 0
        return left

    def _and(self) -> int:
        left = self._bitor()
        while self._take("&&"):
            right = self._bitor()
            left = 1 if (left and right) else 0
        return left

    def _bitor(self) -> int:
        left = self._bitxor()
        while True:
            self._skip_ws()
            if self._peek(2) != "||" and self._take("|"):
                left = left | self._bitxor()
            else:
                return left

    def _bitxor(self) -> int:
        left = self._bitand()
        while self._take("^"):
            left = left ^ self._bitand()
        return left

    def _bitand(self) -> int:
        left = self._equality()
        while True:
            self._skip_ws()
            if self._peek(2) != "&&" and self._take("&"):
                left = left & self._equality()
            else:
                return left

    def _equality(self) -> int:
        left = self._relational()
        while True:
            if self._take("=="):
                left = 1 if left == self._relational() else 0
            elif self._take("!="):
                left = 1 if left != self._relational() else 0
            else:
                return left

    def _relational(self) -> int:
        left = self._shift()
        while True:
            if self._take("<="):
                left = 1 if left <= self._shift() else 0
            elif self._take(">="):
                left = 1 if left >= self._shift() else 0
            else:
                self._skip_ws()
                nxt = self._peek(2)
                if nxt not in ("<<", ">>") and self._take("<"):
                    left = 1 if left < self._shift() else 0
                elif nxt not in ("<<", ">>") and self._take(">"):
                    left = 1 if left > self._shift() else 0
                else:
                    return left

    def _shift(self) -> int:
        left = self._additive()
        while True:
            if self._take("<<"):
                left = left << self._additive()
            elif self._take(">>"):
                left = left >> self._additive()
            else:
                return left

    def _additive(self) -> int:
        left = self._multiplicative()
        while True:
            if self._take("+"):
                left = left + self._multiplicative()
            elif self._take("-"):
                left = left - self._multiplicative()
            else:
                return left

    def _multiplicative(self) -> int:
        left = self._power()
        while True:
            self._skip_ws()
            if self._peek(2) != "**" and self._take("*"):
                left = left * self._power()
            elif self._take("/"):
                right = self._power()
                if right == 0:
                    raise MacroError("eval: division by zero")
                # C semantics: truncate toward zero.
                left = int(left / right) if (left < 0) != (right < 0) \
                    else left // right
            elif self._take("%"):
                right = self._power()
                if right == 0:
                    raise MacroError("eval: modulo by zero")
                # C semantics: remainder has the sign of the dividend.
                left = left - int(left / right) * right if right else 0
            else:
                return left

    def _power(self) -> int:
        left = self._unary()
        if self._take("**"):
            # Right associative.
            right = self._power()
            if right < 0:
                raise MacroError("eval: negative exponent")
            return left ** right
        return left

    def _unary(self) -> int:
        self._skip_ws()
        if self._take("-"):
            return -self._unary()
        if self._take("+"):
            return self._unary()
        if self._take("!"):
            return 0 if self._unary() else 1
        if self._take("~"):
            return ~self._unary()
        return self._primary()

    def _primary(self) -> int:
        self._skip_ws()
        if self._take("("):
            value = self._or()
            if not self._take(")"):
                raise MacroError(f"eval: missing ')' in {self.text!r}")
            return value
        start = self.pos
        if self._peek(2).lower() == "0x":
            self.pos += 2
            while self.pos < len(self.text) and \
                    self.text[self.pos] in "0123456789abcdefABCDEF":
                self.pos += 1
            if self.pos == start + 2:
                raise MacroError(f"eval: bad hex literal in {self.text!r}")
            return int(self.text[start:self.pos], 16)
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        if self.pos == start:
            raise MacroError(
                f"eval: expected number at column {self.pos} in {self.text!r}")
        literal = self.text[start:self.pos]
        if literal.startswith("0") and len(literal) > 1:
            return int(literal, 8)  # m4 honours C octal literals
        return int(literal)


def eval_expression(text: str) -> int:
    """Evaluate an m4 ``eval`` expression, raising MacroError on error."""
    stripped = text.strip()
    if not stripped:
        raise MacroError("eval: empty expression")
    return _Parser(stripped).parse()
