"""Second-generation compiled layer: Python *source* code generation.

Where :mod:`repro.fortran.compile` lowers each program unit to a table
of pre-bound closures (one Python call per statement), this layer emits
one generated Python function per unit — the whole statement tree
flattened into a ``while`` dispatch loop over basic-block regions, with
names resolved to frame-slot accesses at emit time — and compiles it
once with :func:`compile`.  Three things make it fast:

* **No per-statement dispatch.**  Straight-line statement runs become
  straight-line Python; GOTO / computed GOTO / block IF lower to
  ``pc``-dispatch over region leaders.

* **Batched cost accounting.**  The tree walker yields one
  :class:`~repro.fortran.interp.Cost` per statement.  Generated code
  accumulates cycles and statement counts in two locals and emits one
  aggregate ``Cost(cycles, statements)`` event per straight-line run,
  flushing before every observable point (external calls, CALLs into
  other units, WRITE/READ, RETURN/STOP, backward jumps) so the
  process clock at every interaction is bit-identical to the
  tree-walker's.

* **Facts-gated DOALL vectorization.**  A DO loop whose terminal label
  the ``force check --facts`` document proved race-free
  (``kernel_eligible``) and whose body is a run of affine 1-D REAL
  array assignments is lowered to numpy slice kernels guarded by a
  runtime check (float storage, in-bounds, non-aliasing, integer
  bounds, empty do-stack).  The kernel emits one aggregate cost event
  carrying the *exact* cycle and statement count the tree walker would
  have produced for the whole loop; if the guard fails the loop runs
  on the generic path emitted right below it.

Artifacts are cached per ``(unit, facts_digest, cost_scale)`` — the
facts digest in the key is what invalidates ``kernel_eligible``
decisions when a different (or stale) facts document is supplied.
A unit using a construct this layer cannot prove equivalent raises
:class:`CodegenUnsupported`; the interpreter then falls back to the
closure tier and records the reason in ``compile_fallbacks``.
"""

from __future__ import annotations

import hashlib
import json
import weakref

import numpy as np

from repro._util.errors import FortranError
from repro.fortran import ast_nodes as ast
from repro.fortran.compile import (
    _SKIP_CLASSES,
    kernel_eligible_doalls,
)
from repro.fortran.formats import apply_format, parse_format
from repro.fortran.intrinsics import call_intrinsic, is_intrinsic
from repro.fortran.interp import (
    ArrayRef,
    CellRef,
    Cost,
    ElementRef,
    StopSignal,
    ValueRef,
    _require_numeric,
)
from repro.fortran.values import (
    FArray,
    FType,
    default_type_for,
    format_value,
)

_INT = FType.INTEGER
_REAL = FType.REAL
_DOUBLE = FType.DOUBLE

# slot kinds (same classification as the closure tier)
_CELL = "cell"
_ARRAY = "array"
_MAYBE = "maybe"
_DYNAMIC = "dynamic"


class CodegenUnsupported(Exception):
    """The unit uses a construct source codegen does not handle."""


def facts_digest(doc) -> str:
    """Stable digest of a facts document (cache-key component).

    ``None``/empty documents share a sentinel digest, so runs without
    facts still hit the cache."""
    if not doc:
        return "no-facts"
    blob = json.dumps(doc, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


# ----------------------------------------------------------------------
# runtime helpers referenced by generated code
# ----------------------------------------------------------------------
def _rnn(a, b):
    _require_numeric(a)
    _require_numeric(b)


def _tr(v):
    if v is True:
        return True
    if v is False:
        return False
    raise FortranError(f"expected LOGICAL, got {v!r}")


def _add(a, b):
    if isinstance(a, (bool, str)) or isinstance(b, (bool, str)):
        _rnn(a, b)
    return a + b


def _sub(a, b):
    if isinstance(a, (bool, str)) or isinstance(b, (bool, str)):
        _rnn(a, b)
    return a - b


def _mul(a, b):
    if isinstance(a, (bool, str)) or isinstance(b, (bool, str)):
        _rnn(a, b)
    return a * b


def _div(a, b):
    if isinstance(a, (bool, str)) or isinstance(b, (bool, str)):
        _rnn(a, b)
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise FortranError("integer division by zero")
        quotient = abs(a) // abs(b)
        return quotient if (a < 0) == (b < 0) else -quotient
    if b == 0:
        raise FortranError("division by zero")
    return a / b


def _pow(a, b):
    if isinstance(a, (bool, str)) or isinstance(b, (bool, str)):
        _rnn(a, b)
    if isinstance(a, int) and isinstance(b, int):
        if b < 0:
            return 1 if a == 1 else (-1) ** b if a == -1 else 0
        return a ** b
    return float(a) ** float(b)


def _neg(v):
    if isinstance(v, (bool, str)):
        raise FortranError(f"expected numeric operand, got {v!r}")
    return -v


def _pos(v):
    if isinstance(v, (bool, str)):
        raise FortranError(f"expected numeric operand, got {v!r}")
    return v


def _not(v):
    if v is True:
        return False
    if v is False:
        return True
    raise FortranError(f"expected LOGICAL, got {v!r}")


def _concat(a, b):
    if not isinstance(a, str) or not isinstance(b, str):
        raise FortranError("// requires CHARACTER operands")
    return a + b


def _chkcmp(a, b):
    if isinstance(a, str) != isinstance(b, str):
        raise FortranError("cannot compare CHARACTER with numeric")


def _eq(a, b):
    _chkcmp(a, b)
    return a == b


def _ne(a, b):
    _chkcmp(a, b)
    return a != b


def _lt(a, b):
    _chkcmp(a, b)
    return a < b


def _le(a, b):
    _chkcmp(a, b)
    return a <= b


def _gt(a, b):
    _chkcmp(a, b)
    return a > b


def _ge(a, b):
    _chkcmp(a, b)
    return a >= b


def _ld1(cell, fast, sub):
    """1-D array element load with the closure tier's fast path."""
    if sub.__class__ is not int:
        sub = int(sub)
    if fast is not None:
        data, lb, n, _ = fast
        offset = sub - lb
        if 0 <= offset < n:
            return data.item(offset)
    return cell.get((sub,))


def _st1(cell, fast, v, sub):
    """1-D array element store with the closure tier's typed fast path."""
    if sub.__class__ is not int:
        sub = int(sub)
    if fast is not None:
        data, lb, n, is_int = fast
        offset = sub - lb
        if 0 <= offset < n:
            if is_int:
                if v.__class__ is int:
                    data[offset] = v
                    return
            elif v.__class__ is float or v.__class__ is int:
                data[offset] = v
                return
    cell.set((sub,), v)


def _sca(cell, v):
    """Scalar cell assignment, type-specialized like the closure tier."""
    cls = v.__class__
    ftype = cell.ftype
    if cls is float:
        if ftype is _REAL or ftype is _DOUBLE:
            cell.value = v
            return
        if ftype is _INT:
            cell.value = int(v)
            return
    elif cls is int:
        if ftype is _INT:
            cell.value = v
            return
        if ftype is _REAL or ftype is _DOUBLE:
            cell.value = float(v)
            return
    cell.set(v)


def _sma(entry, v, name, unit):
    """Assign to a dummy that must be a scalar at this call site."""
    if entry.__class__ is FArray:
        raise FortranError(
            f"cannot assign scalar to whole array {name}", unit=unit)
    entry.set(v)


def _sdy(frame, name, v, unit):
    """Assign to a dynamically-resolved scalar name."""
    entry = frame.vars.get(name)
    if entry is not None and entry.__class__ is FArray:
        raise FortranError(
            f"cannot assign scalar to whole array {name}", unit=unit)
    frame.get_or_create_scalar(name).set(v)


def _mv(entry, name, unit):
    """Read a MAYBE (dummy) name as a scalar."""
    if entry.__class__ is FArray:
        raise FortranError(
            f"whole array {name} in scalar expression", unit=unit)
    return entry.value


def _dv(frame, name, unit):
    """Read a dynamically-resolved name as a scalar."""
    entry = frame.vars.get(name)
    if entry is None:
        return frame.get_or_create_scalar(name).value
    if entry.__class__ is FArray:
        raise FortranError(
            f"whole array {name} in scalar expression", unit=unit)
    return entry.value


def _ea(name, unit):
    raise FortranError(f"whole array {name} in scalar expression",
                       unit=unit)


def _nofn(name, unit):
    raise FortranError(
        f"{name} is not an array, intrinsic or function", unit=unit)


def _dvc(entry, name, unit):
    """DO variable cell for MAYBE/ARRAY-classified names."""
    if entry.__class__ is FArray:
        raise FortranError(f"{name} is an array, not a scalar", unit=unit)
    return entry


def _adv(frame, executed, nxt):
    """DO terminal advance — identical trip accounting to the closure
    tier (typed increment of the loop variable)."""
    stack = frame.do_stack
    while stack and stack[-1][1] == executed:
        entry = stack[-1]
        entry[4] -= 1
        cell = entry[2]
        # F77: the DO variable is incremented on every pass, including
        # the one that exhausts the trip count.
        value = cell.value + entry[3]
        if value.__class__ is int and cell.ftype is _INT:
            cell.value = value
        else:
            cell.set(value)
        if entry[4] > 0:
            return entry[0] + 1
        stack.pop()
    return nxt


def _dofin(cell, v):
    """Set the DO variable's post-loop value after a kernelized run."""
    if v.__class__ is int and cell.ftype is _INT:
        cell.value = v
    else:
        cell.set(v)


def _mkdyn(frame, name, const):
    """Actual-argument reference for a dynamically-resolved name."""
    entry = frame.vars.get(name)
    if entry is not None:
        if entry.__class__ is FArray:
            return ArrayRef(entry)
        return CellRef(entry)
    if const is not None:
        return const
    return CellRef(frame.get_or_create_scalar(name))


def _num2(v):
    return v.__class__ is int or v.__class__ is float


def _ss(data, start, step, n):
    """Strided 1-D slice of ``n`` elements starting at 0-based
    ``start`` (negative steps handled)."""
    stop = start + n * step
    if step < 0 and stop < 0:
        stop = None
    return data[start:stop:step]


def _kg(frame, idx, spec, kf, ks, tr):
    """Runtime kernel guard: every access must hit a float 1-D fast
    view, stay in bounds for the whole trip range, and no written
    array may share storage with any other accessed array.  A stale
    do-stack entry for *this* loop (re-entry after a GOTO jumped out
    of it) also bails out — the generic path filters such entries,
    the kernel path cannot."""
    for entry in frame.do_stack:
        if entry[0] == idx:
            return False
    fast = frame.fast
    writes, reads = spec
    last = kf + (tr - 1) * ks
    for slot, off in writes:
        f = fast[slot]
        if f is None or f[3]:
            return False
        lo = kf + off - f[1]
        hi = last + off - f[1]
        if lo > hi:
            lo, hi = hi, lo
        if lo < 0 or hi >= f[2]:
            return False
    for slot, off in reads:
        f = fast[slot]
        if f is None or f[3]:
            return False
        lo = kf + off - f[1]
        hi = last + off - f[1]
        if lo > hi:
            lo, hi = hi, lo
        if lo < 0 or hi >= f[2]:
            return False
    for wslot, _off in writes:
        wdata = fast[wslot][0]
        for slot, _o in writes:
            if slot != wslot and np.may_share_memory(wdata,
                                                     fast[slot][0]):
                return False
        for slot, _o in reads:
            if slot != wslot and np.may_share_memory(wdata,
                                                     fast[slot][0]):
                return False
    return True


#: Names injected into every generated module's namespace.
_BASE_NAMESPACE = {
    "_C": Cost,
    "_FE": FortranError,
    "_SS": StopSignal,
    "_FA": FArray,
    "_np": np,
    "_arange": np.arange,
    "_intr": call_intrinsic,
    "_ER": ElementRef,
    "_VR": ValueRef,
    "_tr": _tr,
    "_add": _add,
    "_sub": _sub,
    "_mul": _mul,
    "_div": _div,
    "_pow": _pow,
    "_neg": _neg,
    "_pos": _pos,
    "_not": _not,
    "_concat": _concat,
    "_eq": _eq,
    "_ne": _ne,
    "_lt": _lt,
    "_le": _le,
    "_gt": _gt,
    "_ge": _ge,
    "_ld1": _ld1,
    "_st1": _st1,
    "_sca": _sca,
    "_sma": _sma,
    "_sdy": _sdy,
    "_mv": _mv,
    "_dv": _dv,
    "_ea": _ea,
    "_nofn": _nofn,
    "_dvc": _dvc,
    "_adv": _adv,
    "_dofin": _dofin,
    "_mkdyn": _mkdyn,
    "_num2": _num2,
    "_ss": _ss,
    "_kg": _kg,
}

_REL_FN = {
    ".EQ.": "_eq",
    ".NE.": "_ne",
    ".LT.": "_lt",
    ".LE.": "_le",
    ".GT.": "_gt",
    ".GE.": "_ge",
}


# ----------------------------------------------------------------------
# per-interpreter runtime bridge
# ----------------------------------------------------------------------
class _Runtime:
    """The only interpreter-specific object generated code touches.

    Artifacts are cached across interpreters (same parse, same facts
    digest), so the generated namespace must stay interpreter-free;
    everything that needs *this* run's handler/output/input goes
    through one ``rt`` parameter instead.
    """

    __slots__ = ("interp",)

    def __init__(self, interp) -> None:
        self.interp = interp

    def ext(self, name, refs, frame):
        """External (Force runtime) CALL — returns an event generator."""
        return self.interp.external.call(name, refs, frame)

    def call(self, unit, refs, frame):
        """CALL into another program unit — returns its generator."""
        return self.interp.run_unit(unit, refs, frame.depth + 1,
                                    process=frame.process)

    def ufn(self, unit, refs, frame):
        """User FUNCTION in an expression: run synchronously."""
        gen = self.interp.run_unit(unit, refs, 1, process=frame.process)
        while True:
            try:
                event = next(gen)
            except StopIteration as stop:
                return stop.value
            if not isinstance(event, Cost):
                raise FortranError(
                    f"function {unit.name} attempted a blocking "
                    "operation (not allowed inside an expression)")

    def extfn(self, name, refs, frame):
        return self.interp.external.call_function(name, refs, frame)

    def wl(self, values, frame):
        """List-directed WRITE."""
        interp = self.interp
        line = " ".join(format_value(v) for v in values)
        interp.output.append(line)
        callback = interp.on_output
        if callback is not None:
            callback(line, frame)

    def wf(self, edits, values, frame):
        """FORMAT-directed WRITE (edits resolved at emit time)."""
        interp = self.interp
        callback = interp.on_output
        for line in apply_format(edits, list(values)):
            interp.output.append(line)
            if callback is not None:
                callback(line, frame)

    def rd(self, frame):
        return self.interp._next_input(frame)

    def co(self, frame):
        self.interp._run_copy_outs(frame)


# ----------------------------------------------------------------------
# artifact cache
# ----------------------------------------------------------------------
class _Artifact:
    """One compiled emission of a unit (or a recorded failure)."""

    __slots__ = ("facts_key", "cost_scale", "consults", "fn", "source",
                 "slot_names", "kernel_labels", "error")

    def __init__(self, facts_key, cost_scale, consults, *,
                 fn=None, source="", slot_names=(), kernel_labels=(),
                 error=None):
        self.facts_key = facts_key
        self.cost_scale = cost_scale
        self.consults = consults
        self.fn = fn
        self.source = source
        self.slot_names = slot_names
        self.kernel_labels = kernel_labels
        self.error = error


#: unit -> list of cached artifacts (weak: dies with the parse tree)
_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _consults_valid(consults, interp) -> bool:
    """Replay the handler queries recorded at emit time: an artifact is
    reusable only under a handler that answers them identically."""
    handler = interp.external
    for name, kind, expected in consults:
        actual = handler.is_external(name) if kind == "ext" \
            else handler.is_external_function(name)
        if bool(actual) != expected:
            return False
    return True


# ----------------------------------------------------------------------
# program / unit wrappers (mirrors compile.CompiledProgram)
# ----------------------------------------------------------------------
class CodegenProgram:
    """Per-interpreter cache of source-generated units."""

    def __init__(self, interp) -> None:
        self.interp = interp
        self._units: dict[str, "CodegenUnit | None"] = {}
        #: unit name -> reason the next tier down is used instead
        self.fallbacks: dict[str, str] = {}
        self.facts_key = facts_digest(getattr(interp, "facts", None))
        #: routine -> race-free DOALL labels from the analysis facts
        self.eligible = kernel_eligible_doalls(
            getattr(interp, "facts", None))
        #: unit name -> labels of its kernel-eligible loops
        self.kernel_eligible: dict[str, list[int]] = {}
        #: unit name -> labels actually lowered to numpy kernels
        self.kernelized: dict[str, list[int]] = {}
        #: unit name -> generated Python source (provenance-annotated)
        self.sources: dict[str, str] = {}

    def unit_for(self, unit) -> "CodegenUnit | None":
        name = unit.name
        try:
            return self._units[name]
        except KeyError:
            pass
        artifact = self._artifact_for(unit)
        if artifact.error is not None:
            self.fallbacks[name] = artifact.error
            generated = None
        else:
            generated = CodegenUnit(unit, self.interp, artifact)
            self.sources[name] = artifact.source
            if artifact.kernel_labels:
                self.kernelized[name] = list(artifact.kernel_labels)
        self._units[name] = generated
        if generated is not None:
            proven = self.eligible.get(name.upper())
            if proven:
                labels = sorted(
                    stmt.term_label for stmt in unit.statements
                    if isinstance(stmt, ast.Do)
                    and stmt.term_label in proven)
                if labels:
                    self.kernel_eligible[name] = labels
        return generated

    def _artifact_for(self, unit) -> _Artifact:
        interp = self.interp
        scale = interp.cost_scale
        cached = _CACHE.get(unit)
        if cached is None:
            cached = _CACHE.setdefault(unit, [])
        for artifact in cached:
            if artifact.facts_key == self.facts_key \
                    and artifact.cost_scale == scale \
                    and _consults_valid(artifact.consults, interp):
                return artifact
        emitter = _Emitter(unit, interp,
                           self.eligible.get(unit.name.upper()) or set())
        try:
            source, namespace = emitter.emit()
            code = compile(source, f"<codegen {unit.name}>", "exec")
            exec(code, namespace)
            artifact = _Artifact(
                self.facts_key, scale, tuple(sorted(set(emitter.consults))),
                fn=namespace["_gen"], source=source,
                slot_names=tuple(emitter.slot_names),
                kernel_labels=tuple(emitter.kernel_labels))
        except CodegenUnsupported as exc:
            artifact = _Artifact(
                self.facts_key, scale, tuple(sorted(set(emitter.consults))),
                error=str(exc))
        cached.append(artifact)
        return artifact


class CodegenUnit:
    """One program unit lowered to generated Python source."""

    def __init__(self, unit, interp, artifact) -> None:
        self.unit = unit
        self.interp = interp
        self.source = artifact.source
        self.slot_names = artifact.slot_names
        self._fn = artifact.fn
        self._rt = _Runtime(interp)

    def run(self, args, depth, process):
        """Generator executing one invocation (same contract as the
        tree-walker's ``run_unit``)."""
        interp = self.interp
        if depth > interp.max_call_depth:
            raise FortranError(
                f"call depth exceeds {interp.max_call_depth} "
                f"(runaway recursion?)", unit=self.unit.name)
        frame = interp._make_frame(self.unit, args, process)
        frame.depth = depth
        self._bind(frame)
        yield from self._fn(frame, self._rt)
        if self.unit.kind == "function":
            assert frame.result_cell is not None
            return frame.result_cell.get()
        return None

    def _bind(self, frame) -> None:
        """Resolve slots to this invocation's storage (same fast-view
        capture as the closure tier)."""
        from repro.fortran.interp import Cell
        variables = frame.vars
        slots = []
        argrefs = []
        fast = []
        for name in self.slot_names:
            entry = variables.get(name)
            if entry is None:
                entry = Cell(default_type_for(name))
                variables[name] = entry
            slots.append(entry)
            if entry.__class__ is FArray:
                argrefs.append(ArrayRef(entry))
                data = entry.data
                if len(entry.shape) == 1 and data.dtype.kind in "if":
                    fast.append((data, entry.lower[0], entry.shape[0],
                                 data.dtype.kind == "i"))
                else:
                    fast.append(None)
            else:
                argrefs.append(CellRef(entry))
                fast.append(None)
        frame.slots = slots
        frame.argrefs = argrefs
        frame.fast = fast


def compile_all(interp) -> dict[str, str]:
    """Force source-codegen of every unit; returns the fallback map."""
    for unit in interp.program.units.values():
        interp._codegen_unit(unit)
    return dict(interp._codegen.fallbacks)


# ----------------------------------------------------------------------
# the emitter
# ----------------------------------------------------------------------
class _EmitterBase:
    """Emit one unit's generated Python source.

    The unit's flat statement list is partitioned at *leaders* (jump
    targets); each region becomes one arm of a ``pc`` dispatch loop.
    Costs accumulate statically while emitting straight-line code and
    are materialized into the ``_p``/``_n`` runtime accumulators before
    any control transfer, then flushed as one aggregate ``Cost`` event
    before every observable point.
    """

    def __init__(self, unit, interp, eligible_labels) -> None:
        self.unit = unit
        self.interp = interp
        self.program = interp.program
        self.handler = interp.external
        self.scale = interp.cost_scale
        self.eligible_labels = eligible_labels
        self.consults: list[tuple[str, str, bool]] = []
        self.kernel_labels: list[int] = []

        # name classification (same rules as the closure tier)
        self._params = set(unit.params)
        self._bounds_names: set[str] = set()
        self._externals: set[str] = set()
        self._decl_type: dict[str, FType] = {}
        for stmt in unit.statements:
            if isinstance(stmt, (ast.Declaration, ast.DimensionDecl,
                                 ast.CommonDecl)):
                for name, bounds in stmt.entities:
                    if bounds is not None:
                        self._bounds_names.add(name)
                    if isinstance(stmt, ast.Declaration):
                        self._decl_type[name] = stmt.ftype
            elif isinstance(stmt, ast.ExternalDecl):
                self._externals.update(stmt.names)

        self.slot_index: dict[str, int] = {}
        self.slot_names: list[str] = []
        self.slot_kinds: list[str] = []

        self.lines: list[str] = []
        self.inits: list[str] = []   # locals initialized before the loop
        self.indent = 2
        self.stat_c = 0          # statically-pending cycles
        self.stat_n = 0          # statically-pending statement count
        self.tmp = 0
        self.consts: dict[str, object] = {}
        self.const_ids: dict[int, str] = {}

    # -- low-level emission helpers ------------------------------------
    def w(self, text: str, provenance=None) -> None:
        pad = "    " * self.indent
        if provenance is not None:
            text = f"{text}  # L{provenance}"
        self.lines.append(pad + text)

    def temp(self, prefix: str = "_t") -> str:
        self.tmp += 1
        return f"{prefix}{self.tmp}"

    def const(self, value, prefix: str) -> str:
        key = id(value)
        name = self.const_ids.get(key)
        if name is None:
            name = f"{prefix}{len(self.consts)}"
            self.const_ids[key] = name
            self.consts[name] = value
        return name

    def mat(self) -> None:
        """Materialize statically-pending costs into ``_p``/``_n``."""
        if self.stat_n:
            self.w(f"_p += {self.stat_c}")
            self.w(f"_n += {self.stat_n}")
            self.stat_c = 0
            self.stat_n = 0

    def flush(self) -> None:
        """Yield the pending aggregate cost event, if any."""
        self.mat()
        self.w("if _n:")
        self.w("    yield _C(_p, _n)")
        self.w("    _p = 0")
        self.w("    _n = 0")

    # -- handler consults (recorded for cache validation) --------------
    def _is_ext(self, name: str) -> bool:
        result = bool(self.handler.is_external(name))
        self.consults.append((name, "ext", result))
        return result

    def _is_extfn(self, name: str) -> bool:
        result = bool(self.handler.is_external_function(name))
        self.consults.append((name, "extfn", result))
        return result

    def _kind(self, name: str) -> str:
        if name in self._params:
            return _MAYBE
        if name in self._bounds_names:
            return _ARRAY
        if name in self.program.units or name in self._externals \
                or self._is_ext(name) or self._is_extfn(name):
            return _DYNAMIC
        return _CELL

    def _slot(self, name: str) -> int:
        index = self.slot_index.get(name)
        if index is None:
            index = len(self.slot_names)
            self.slot_index[name] = index
            self.slot_names.append(name)
            self.slot_kinds.append(self._kind(name))
        return index

    def _ftype(self, name: str) -> FType:
        return self._decl_type.get(name, default_type_for(name))

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def emit(self):
        unit = self.unit
        statements = unit.statements
        count = len(statements)
        if count == 0:
            raise CodegenUnsupported("empty unit")

        self.is_terminal = [False] * count
        for stmt in statements:
            if isinstance(stmt, ast.Do) and 0 <= stmt.terminal < count:
                self.is_terminal[stmt.terminal] = True

        leaders = self._leaders()
        self.lines = [
            f"# generated by repro.fortran.codegen for unit "
            f"{unit.name} ({unit.kind})",
            "def _gen(frame, rt):",
            "    _sl = frame.slots",
            "    _fv = frame.fast",
            "    _ag = frame.argrefs",
            "    _p = 0",
            "    _n = 0",
            "    pc = 0",
            "    via = False",
            "    while True:",
        ]
        first = True
        for pos, leader in enumerate(leaders):
            end = leaders[pos + 1] if pos + 1 < len(leaders) else count
            head = "if" if first else "elif"
            first = False
            self.indent = 2
            self.w(f"{head} pc == {leader}:")
            self.indent = 3
            self._region(leader, end, count)
        self.indent = 2
        self.w("else:")
        self.indent = 3
        self.w(f'raise _FE("fell off the end of unit", unit=_UN)')

        # kernel memo cells etc. live ahead of the dispatch loop (the
        # preamble is a fixed 10-line prefix ending in "while True:")
        for j, init in enumerate(self.inits):
            self.lines.insert(9 + j, "    " + init)

        self.consts["_UN"] = unit.name
        namespace = dict(_BASE_NAMESPACE)
        namespace.update(self.consts)
        return "\n".join(self.lines) + "\n", namespace

    def _leaders(self) -> list[int]:
        count = len(self.unit.statements)
        leaders = {0}

        def add(index):
            if 0 <= index < count:
                leaders.add(index)

        def scan(stmt):
            if isinstance(stmt, ast.Goto):
                add(stmt.target)
            elif isinstance(stmt, ast.ComputedGoto):
                for target in stmt.targets:
                    add(target)
            elif isinstance(stmt, ast.IfThen):
                add(stmt.false_target)
            elif isinstance(stmt, ast.ElseIf):
                add(stmt.false_target)
                add(stmt.end_target)
            elif isinstance(stmt, ast.Else):
                add(stmt.end_target)
            elif isinstance(stmt, ast.Do):
                add(stmt.index + 1)
                add(stmt.terminal + 1)
            elif isinstance(stmt, ast.LogicalIf):
                scan(stmt.body)

        for stmt in self.unit.statements:
            scan(stmt)
            # ELSE IF / ELSE read the via flag, so they must head their
            # own region even if nothing jumps to them explicitly.
            if isinstance(stmt, (ast.ElseIf, ast.Else)):
                add(stmt.index)
        return sorted(leaders)

    def _region(self, start: int, end: int, count: int) -> None:
        statements = self.unit.statements
        top = len(self.lines)
        for i in range(start, end):
            stmt = statements[i]
            if isinstance(stmt, _SKIP_CLASSES):
                if self.is_terminal[i]:
                    self._advance(i)
                continue
            self.stat_c += stmt.weight * self.scale
            self.stat_n += 1
            transferred = self._stmt(stmt, i)
            if transferred:
                if len(self.lines) == top:
                    self.w("pass")
                return
            if self.is_terminal[i]:
                self._advance(i)
        # sequential fall-through to the next region (or off the end)
        self.mat()
        if end >= count:
            self.flush()
            self.w('raise _FE("fell off the end of unit", unit=_UN)')
        else:
            self.w(f"pc = {end}")
            self.w("via = False")
            self.w("continue")

    def _advance(self, i: int) -> None:
        """DO terminal bookkeeping after sequential completion of the
        statement at index ``i`` (flush keeps the clock loop-accurate
        at every backward jump)."""
        self.mat()
        self.w(f"if frame.do_stack and frame.do_stack[-1][1] == {i}:")
        self.indent += 1
        self.flush()
        self.w(f"pc = _adv(frame, {i}, {i + 1})")
        self.w(f"via = pc != {i + 1}")
        self.w("continue")
        self.indent -= 1

    # ------------------------------------------------------------------
    # statements — each returns True when it ends the region
    # ------------------------------------------------------------------
    def _stmt(self, stmt, i: int) -> bool:
        cls = stmt.__class__
        method = _GEN_DISPATCH.get(cls)
        if method is None:
            raise CodegenUnsupported(
                f"statement {cls.__name__} not supported")
        return method(self, stmt, i)

    def _g_continue(self, stmt, i) -> bool:
        return False

    _g_end_if = _g_continue
    _g_end_do = _g_continue

    def _g_goto(self, stmt, i) -> bool:
        self.mat()
        if stmt.target <= i:
            self.flush()
        self.w(f"pc = {stmt.target}", stmt.line)
        self.w("via = True")
        self.w("continue")
        return True

    def _g_computed_goto(self, stmt, i) -> bool:
        selector = self._expr(stmt.selector)
        self._maybe_flush_exprs((stmt.selector,))
        self.mat()
        sel = self.temp()
        self.w(f"{sel} = int({selector})", stmt.line)
        targets = tuple(stmt.targets)
        cg = self.const(targets, "_CG")
        self.w(f"if 1 <= {sel} <= {len(targets)}:")
        self.indent += 1
        if any(t <= i for t in targets):
            self.flush()
        self.w(f"pc = {cg}[{sel} - 1]")
        self.w("via = True")
        self.w("continue")
        self.indent -= 1
        return False

    def _g_if_then(self, stmt, i) -> bool:
        cond = self._expr(stmt.cond)
        self._maybe_flush_exprs((stmt.cond,))
        self.mat()
        self.w(f"if not _tr({cond}):", stmt.line)
        self.indent += 1
        self.w(f"pc = {stmt.false_target}")
        self.w("via = True")
        self.w("continue")
        self.indent -= 1
        return False

    def _g_else_if(self, stmt, i) -> bool:
        # Region head: sequential arrival means the previous arm just
        # finished, so control jumps to END IF; arrival by jump tests
        # this arm's condition.
        cond = self._expr(stmt.cond)
        self._maybe_flush_exprs((stmt.cond,))
        self.mat()
        self.w("if not via:", stmt.line)
        self.indent += 1
        if stmt.end_target <= i:
            self.flush()
        self.w(f"pc = {stmt.end_target}")
        self.w("via = True")
        self.w("continue")
        self.indent -= 1
        self.w(f"if not _tr({cond}):")
        self.indent += 1
        self.w(f"pc = {stmt.false_target}")
        self.w("via = True")
        self.w("continue")
        self.indent -= 1
        return False

    def _g_else(self, stmt, i) -> bool:
        self.mat()
        self.w("if not via:", stmt.line)
        self.indent += 1
        if stmt.end_target <= i:
            self.flush()
        self.w(f"pc = {stmt.end_target}")
        self.w("via = True")
        self.w("continue")
        self.indent -= 1
        return False

    _IF_BODIES = (ast.Goto, ast.Assign, ast.Call, ast.Stop, ast.Return,
                  ast.Write, ast.Read, ast.Continue, ast.ComputedGoto)

    def _g_logical_if(self, stmt, i) -> bool:
        body = stmt.body
        if not isinstance(body, self._IF_BODIES):
            raise CodegenUnsupported(
                f"IF body {body.__class__.__name__} not supported")
        cond = self._expr(stmt.cond)
        self._maybe_flush_exprs((stmt.cond,))
        self.mat()
        self.w(f"if _tr({cond}):", stmt.line)
        self.indent += 1
        top = len(self.lines)
        self._stmt(body, i)
        if len(self.lines) == top:
            self.w("pass")
        self.indent -= 1
        # a labelled logical IF can be a DO terminal; the advance (in
        # _region) runs on sequential completion whether or not the
        # body executed, which the body's own transfer skips.
        return False

    def _g_assign(self, stmt, i) -> bool:
        self._maybe_flush_stmt_exprs(stmt)
        value = self._expr(stmt.expr)
        target = stmt.target
        if target.__class__ is ast.Var:
            name = target.name
            kind = self._kind(name)
            if kind is _CELL:
                s = self._slot(name)
                self.w(f"_sca(_sl[{s}], {value})", stmt.line)
                return False
            if kind is _ARRAY:
                tv = self.temp()
                self.w(f"{tv} = {value}", stmt.line)
                self.w(f'raise _FE("cannot assign scalar to whole array '
                       f'{name}", unit=_UN)')
                return True
            if kind is _MAYBE:
                s = self._slot(name)
                self.w(f'_sma(_sl[{s}], {value}, "{name}", _UN)',
                       stmt.line)
                return False
            self.w(f'_sdy(frame, "{name}", {value}, _UN)', stmt.line)
            return False
        if target.__class__ is ast.Apply:
            name = target.name
            kind = self._kind(name)
            subs = [self._expr(a) for a in target.args]
            if kind is _ARRAY:
                s = self._slot(name)
                if len(subs) == 1:
                    self.w(f"_st1(_sl[{s}], _fv[{s}], {value}, {subs[0]})",
                           stmt.line)
                    return False
                tv = self.temp()
                self.w(f"{tv} = {value}", stmt.line)
                tup = ", ".join(f"int({sub})" for sub in subs)
                self.w(f"_sl[{s}].set(({tup},), {tv})")
                return False
            tv = self.temp()
            te = self.temp("_e")
            self.w(f"{tv} = {value}", stmt.line)
            if kind is _MAYBE:
                s = self._slot(name)
                self.w(f"{te} = _sl[{s}]")
            else:
                self.w(f'{te} = frame.vars.get("{name}")')
            self.w(f"if {te}.__class__ is not _FA:")
            self.w(f'    raise _FE("{name} is not an array", unit=_UN)')
            tup = ", ".join(f"int({sub})" for sub in subs)
            comma = "," if len(subs) == 1 else ""
            self.w(f"{te}.set(({tup}{comma}), {tv})")
            return False
        raise CodegenUnsupported("bad assignment target")

    def _g_call(self, stmt, i) -> bool:
        name = stmt.name
        if self._is_ext(name):
            refs = ", ".join(self._argref(a) for a in stmt.args)
            self.flush()
            self.w(f'yield from rt.ext("{name}", [{refs}], frame)',
                   stmt.line)
            return False
        unit = self.program.units.get(name)
        if unit is None or unit.kind != "subroutine":
            self.mat()
            self.w(f'raise _FE("no subroutine named {name}", '
                   f"line={stmt.line}, unit=_UN)", stmt.line)
            return True
        refs = ", ".join(self._argref(a) for a in stmt.args)
        uc = self.const(unit, "_U")
        self.flush()
        self.w(f"yield from rt.call({uc}, [{refs}], frame)", stmt.line)
        return False

    def _g_return(self, stmt, i) -> bool:
        self.flush()
        if self.unit.params:
            self.w("rt.co(frame)", stmt.line)
            self.w("return")
        else:
            self.w("return", stmt.line)
        return True

    _g_end_unit = _g_return

    def _g_stop(self, stmt, i) -> bool:
        self.flush()
        self.w(f"raise _SS({stmt.message!r})", stmt.line)
        return True

    def _g_write(self, stmt, i) -> bool:
        items = [self._expr(e) for e in stmt.items]
        self.flush()
        values = ", ".join(items)
        comma = "," if len(items) == 1 else ""
        if stmt.fmt_label is None:
            self.w(f"rt.wl(({values}{comma}), frame)", stmt.line)
            return False
        edits = self._resolve_format(stmt)
        fc = self.const(edits, "_FMT")
        self.w(f"rt.wf({fc}, ({values}{comma}), frame)", stmt.line)
        return False

    def _resolve_format(self, stmt):
        if stmt.compiled_format is not None:
            return stmt.compiled_format
        unit = self.unit
        index = unit.label_index.get(stmt.fmt_label)
        if index is None:
            raise CodegenUnsupported(
                f"no FORMAT labelled {stmt.fmt_label}")
        fmt_stmt = unit.statements[index]
        if not isinstance(fmt_stmt, ast.FormatStmt):
            raise CodegenUnsupported(
                f"label {stmt.fmt_label} is not a FORMAT statement")
        text = fmt_stmt.text.strip()
        open_paren = text.find("(")
        if not text.upper().startswith("FORMAT") or open_paren < 0 \
                or not text.endswith(")"):
            raise CodegenUnsupported(f"malformed FORMAT: {text!r}")
        try:
            stmt.compiled_format = parse_format(text[open_paren + 1:-1])
        except FortranError as exc:
            raise CodegenUnsupported(str(exc)) from exc
        return stmt.compiled_format

    def _g_read(self, stmt, i) -> bool:
        self.flush()
        first = True
        for target in stmt.targets:
            prov = stmt.line if first else None
            first = False
            self._read_store(target, prov)
        if not stmt.targets:
            self.w("pass", stmt.line)
        return False

    def _read_store(self, target, prov) -> None:
        if target.__class__ is ast.Var:
            name = target.name
            kind = self._kind(name)
            if kind is _CELL:
                s = self._slot(name)
                self.w(f"_sl[{s}].set(rt.rd(frame))", prov)
                return
            if kind is _MAYBE or kind is _ARRAY:
                s = self._slot(name)
                self.w(f'_sma(_sl[{s}], rt.rd(frame), "{name}", _UN)',
                       prov)
                return
            self.w(f'_sdy(frame, "{name}", rt.rd(frame), _UN)', prov)
            return
        if target.__class__ is ast.Apply:
            name = target.name
            kind = self._kind(name)
            subs = [self._expr(a) for a in target.args]
            tv = self.temp()
            te = self.temp("_e")
            self.w(f"{tv} = rt.rd(frame)", prov)
            if kind is _ARRAY or kind is _MAYBE:
                s = self._slot(name)
                self.w(f"{te} = _sl[{s}]")
            else:
                self.w(f'{te} = frame.vars.get("{name}")')
            self.w(f"if {te}.__class__ is not _FA:")
            self.w(f'    raise _FE("{name} is not an array", unit=_UN)')
            tup = ", ".join(f"int({sub})" for sub in subs)
            comma = "," if len(subs) == 1 else ""
            self.w(f"{te}.set(({tup}{comma}), {tv})")
            return
        raise CodegenUnsupported("bad assignment target")

    def _g_do(self, stmt, i) -> bool:
        exprs = [stmt.first, stmt.last]
        if stmt.step is not None:
            exprs.append(stmt.step)
        self._maybe_flush_exprs(exprs)
        if self.is_terminal[i]:
            raise CodegenUnsupported("DO statement is its own terminal")
        self._maybe_kernel(stmt, i)
        first = self._expr(stmt.first)
        last = self._expr(stmt.last)
        step = self._expr(stmt.step) if stmt.step is not None else "1"
        self.mat()
        tf = self.temp("_f")
        tl = self.temp("_l")
        ts = self.temp("_s")
        tc = self.temp("_c")
        tt = self.temp("_n")
        self.w(f"{tf} = {first}", stmt.line)
        self.w(f"{tl} = {last}")
        self.w(f"{ts} = {step}")
        self.w(f"if {ts} == 0:")
        self.w(f'    raise _FE("DO step of zero", line={stmt.line}, '
               "unit=_UN)")
        name = stmt.var
        kind = self._kind(name)
        if kind is _CELL:
            s = self._slot(name)
            self.w(f"{tc} = _sl[{s}]")
        elif kind is _DYNAMIC:
            self.w(f'{tc} = frame.get_or_create_scalar("{name}")')
        else:
            s = self._slot(name)
            self.w(f'{tc} = _dvc(_sl[{s}], "{name}", _UN)')
        self.w(f"{tc}.set({tf})")
        self.w(f"{tt} = int(({tl} - {tf} + {ts}) // {ts})")
        self.w(f"if isinstance({tf}, float) or isinstance({tl}, float) "
               f"or isinstance({ts}, float):")
        self.w(f"    {tt} = int(({tl} - {tf} + {ts}) / {ts})")
        self.w(f"if {tt} <= 0:")
        self.indent += 1
        self.w(f"pc = {stmt.terminal + 1}")
        self.w("via = True")
        self.w("continue")
        self.indent -= 1
        self.w("if frame.do_stack:")
        self.w(f"    frame.do_stack[:] = [e for e in frame.do_stack "
               f"if e[0] != {stmt.index}]")
        self.w(f"frame.do_stack.append([{stmt.index}, {stmt.terminal}, "
               f"{tc}, {ts}, {tt}])")
        return False

    # ------------------------------------------------------------------
    # flush-point analysis
    # ------------------------------------------------------------------
    def _risky_expr(self, expr) -> bool:
        """True when evaluating ``expr`` may run user/external code
        (which can observe the process clock), so pending costs must
        be flushed first."""
        cls = expr.__class__
        if cls is ast.BinOp:
            return self._risky_expr(expr.left) \
                or self._risky_expr(expr.right)
        if cls is ast.UnaryOp:
            return self._risky_expr(expr.operand)
        if cls is ast.Apply:
            kind = self._kind(expr.name)
            if kind is _ARRAY:
                pass            # pure element load; check args below
            elif kind is _CELL and is_intrinsic(expr.name) \
                    and not self._is_extfn(expr.name):
                pass            # pure intrinsic; check args below
            else:
                return True     # MAYBE/DYNAMIC or function resolution
            return any(self._risky_expr(a) for a in expr.args)
        return False

    def _maybe_flush_exprs(self, exprs) -> None:
        if any(self._risky_expr(e) for e in exprs):
            self.flush()

    def _maybe_flush_stmt_exprs(self, stmt) -> None:
        exprs = []
        if isinstance(stmt, ast.Assign):
            exprs.append(stmt.expr)
            if stmt.target.__class__ is ast.Apply:
                exprs.extend(stmt.target.args)
        self._maybe_flush_exprs(exprs)

    # ------------------------------------------------------------------
    # expressions — return Python source strings
    # ------------------------------------------------------------------
    def _expr(self, expr) -> str:
        cls = expr.__class__
        if cls is ast.Num:
            return repr(expr.value)
        if cls is ast.Str:
            return repr(expr.value)
        if cls is ast.LogConst:
            return repr(expr.value)
        if cls is ast.Var:
            return self._var_read(expr.name)
        if cls is ast.BinOp:
            return self._binop(expr)
        if cls is ast.UnaryOp:
            return self._unary(expr)
        if cls is ast.Apply:
            return self._apply(expr)
        raise CodegenUnsupported(f"cannot compile {expr!r}")

    def _var_read(self, name: str) -> str:
        kind = self._kind(name)
        if kind is _CELL:
            return f"_sl[{self._slot(name)}].value"
        if kind is _ARRAY:
            return f'_ea("{name}", _UN)'
        if kind is _MAYBE:
            return f'_mv(_sl[{self._slot(name)}], "{name}", _UN)'
        return f'_dv(frame, "{name}", _UN)'

    def _unary(self, expr) -> str:
        operand = self._expr(expr.operand)
        op = expr.op
        if op == "-":
            return f"_neg({operand})"
        if op == "+":
            return f"_pos({operand})"
        if op == ".NOT.":
            return f"_not({operand})"
        raise CodegenUnsupported(f"unary operator {op}")

    def _binop(self, expr) -> str:
        op = expr.op
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        if op == ".AND.":
            return f"(_tr({left}) and _tr({right}))"
        if op == ".OR.":
            return f"(_tr({left}) or _tr({right}))"
        if op == "//":
            return f"_concat({left}, {right})"
        rel = _REL_FN.get(op)
        if rel is not None:
            return f"{rel}({left}, {right})"
        fn = {"+": "_add", "-": "_sub", "*": "_mul", "/": "_div",
              "**": "_pow"}.get(op)
        if fn is None:
            raise CodegenUnsupported(f"operator {op}")
        return f"{fn}({left}, {right})"

    def _apply(self, expr) -> str:
        name = expr.name
        kind = self._kind(name)
        if kind is _ARRAY:
            s = self._slot(name)
            subs = [self._expr(a) for a in expr.args]
            if len(subs) == 1:
                return f"_ld1(_sl[{s}], _fv[{s}], {subs[0]})"
            tup = ", ".join(f"int({sub})" for sub in subs)
            return f"_sl[{s}].get(({tup},))"
        if kind is _MAYBE:
            s = self._slot(name)
            subs = [self._expr(a) for a in expr.args]
            tup = ", ".join(f"int({sub})" for sub in subs)
            comma = "," if len(subs) == 1 else ""
            fallback = self._apply_fn(name, expr.args)
            return (f"(_sl[{s}].get(({tup}{comma})) "
                    f"if _sl[{s}].__class__ is _FA else {fallback})")
        if kind is _DYNAMIC:
            subs = [self._expr(a) for a in expr.args]
            tup = ", ".join(f"int({sub})" for sub in subs)
            comma = "," if len(subs) == 1 else ""
            fallback = self._apply_fn(name, expr.args)
            tw = self.temp("_w")
            return (f"({tw}.get(({tup}{comma})) "
                    f'if ({tw} := frame.vars.get("{name}")).__class__ '
                    f"is _FA else {fallback})")
        return self._apply_fn(name, expr.args)

    def _apply_fn(self, name: str, arg_exprs) -> str:
        """Function-resolution path of Apply, in the interpreter's
        order: external function, intrinsic, user FUNCTION, error."""
        if self._is_extfn(name):
            refs = ", ".join(self._argref(a) for a in arg_exprs)
            return f'rt.extfn("{name}", [{refs}], frame)'
        if is_intrinsic(name):
            args = ", ".join(self._expr(a) for a in arg_exprs)
            return f'_intr("{name}", [{args}])'
        unit = self.program.units.get(name)
        if unit is not None and unit.kind == "function":
            refs = ", ".join(self._argref(a) for a in arg_exprs)
            uc = self.const(unit, "_U")
            return f"rt.ufn({uc}, [{refs}], frame)"
        return f'_nofn("{name}", _UN)'

    def _argref(self, expr) -> str:
        """Source for an actual-argument reference (pass-by-reference)."""
        if expr.__class__ is ast.Var:
            name = expr.name
            kind = self._kind(name)
            if kind is not _DYNAMIC:
                return f"_ag[{self._slot(name)}]"
            procedure = (name in self.program.units
                         or name in self._externals
                         or self._is_ext(name))
            const = "None"
            if procedure:
                const = self.const(ValueRef(name), "_VC")
            return f'_mkdyn(frame, "{name}", {const})'
        if expr.__class__ is ast.Apply:
            name = expr.name
            kind = self._kind(name)
            subs = [self._expr(a) for a in expr.args]
            tup = ", ".join(f"int({sub})" for sub in subs)
            comma = "," if len(subs) == 1 else ""
            if kind is _ARRAY:
                s = self._slot(name)
                return f"_ER(_sl[{s}], ({tup}{comma}))"
            if kind is _MAYBE:
                s = self._slot(name)
                value = self._expr(expr)
                return (f"(_ER(_sl[{s}], ({tup}{comma})) "
                        f"if _sl[{s}].__class__ is _FA "
                        f"else _VR({value}))")
            if kind is _DYNAMIC:
                value = self._expr(expr)
                tw = self.temp("_w")
                return (f"(_ER({tw}, ({tup}{comma})) "
                        f'if ({tw} := frame.vars.get("{name}")).__class__ '
                        f"is _FA else _VR({value}))")
        return f"_VR({self._expr(expr)})"


class _KernelRefused(Exception):
    """Loop shape outside the vectorizable subset (not a unit failure —
    the loop simply runs on the generic path)."""


class _Emitter(_EmitterBase):
    # ------------------------------------------------------------------
    # facts-gated DOALL vectorization
    # ------------------------------------------------------------------
    def _maybe_kernel(self, stmt, i) -> None:
        """Emit a guarded numpy kernel for an eligible DOALL ahead of
        the generic loop lowering; guard failure falls through to the
        generic path right below."""
        if stmt.term_label is None \
                or stmt.term_label not in self.eligible_labels:
            return
        try:
            plan = self._kernel_plan(stmt)
        except _KernelRefused:
            return
        self.kernel_labels.append(stmt.term_label)
        self._emit_kernel(stmt, i, plan)

    def _kernel_plan(self, stmt):
        unit = self.unit
        statements = unit.statements
        terminal = statements[stmt.terminal] \
            if 0 <= stmt.terminal < len(statements) else None
        if not isinstance(terminal, (ast.Continue, ast.EndDo)):
            raise _KernelRefused("terminal not CONTINUE/END DO")
        dovar = stmt.var
        if self._kind(dovar) is not _CELL \
                or self._ftype(dovar) is not _INT:
            raise _KernelRefused("DO variable not a local INTEGER")
        for bound in (stmt.first, stmt.last, stmt.step):
            if bound is not None:
                self._check_pure(bound)
        body = statements[stmt.index + 1:stmt.terminal]
        if not body or not all(s.__class__ is ast.Assign for s in body):
            raise _KernelRefused("body not a run of assignments")

        written: set[str] = set()
        targets = []
        for assign in body:
            target = assign.target
            if target.__class__ is not ast.Apply \
                    or len(target.args) != 1:
                raise _KernelRefused("target not a 1-D element")
            name = target.name
            if name in written:
                raise _KernelRefused(f"{name} written twice")
            if self._kind(name) is not _ARRAY \
                    or self._ftype(name) not in (_REAL, _DOUBLE):
                raise _KernelRefused(f"{name} not a REAL array")
            written.add(name)
            offset = self._affine_offset(target.args[0], dovar)
            targets.append((self._slot(name), offset))

        reads: dict[tuple[int, int], str] = {}
        scalars: dict[int, str] = {}
        state = {"iv": False, "ivname": self.temp("_kiv")}
        rhs = [self._kexpr(a.expr, dovar, written, reads, scalars,
                           state)[0]
               for a in body]

        scale = self.scale
        w_it = sum(s.weight for s in body) * scale \
            + terminal.weight * scale
        n_it = len(body) + 1
        return {
            "targets": targets,
            "rhs": rhs,
            "reads": reads,
            "scalars": scalars,
            "need_iv": state["iv"],
            "ivname": state["ivname"],
            "w_it": w_it,
            "n_it": n_it,
        }

    def _check_pure(self, expr) -> None:
        """Bounds must be side-effect free: the kernel path evaluates
        them, and the generic fallback below evaluates them again."""
        cls = expr.__class__
        if cls is ast.Num:
            return
        if cls is ast.Var:
            if self._kind(expr.name) in (_CELL, _MAYBE, _DYNAMIC):
                return
            raise _KernelRefused("whole-array DO bound")
        if cls is ast.BinOp:
            self._check_pure(expr.left)
            self._check_pure(expr.right)
            return
        if cls is ast.UnaryOp:
            self._check_pure(expr.operand)
            return
        raise _KernelRefused("impure DO bound")

    def _affine_offset(self, sub, dovar) -> int:
        """Subscript must be ``I``, ``I ± c`` or ``c + I`` for literal
        integer ``c``; returns the offset."""
        cls = sub.__class__
        if cls is ast.Var and sub.name == dovar:
            return 0
        if cls is ast.BinOp:
            left, right, op = sub.left, sub.right, sub.op
            if op in ("+", "-") and left.__class__ is ast.Var \
                    and left.name == dovar \
                    and right.__class__ is ast.Num \
                    and right.value.__class__ is int:
                return right.value if op == "+" else -right.value
            if op == "+" and right.__class__ is ast.Var \
                    and right.name == dovar \
                    and left.__class__ is ast.Num \
                    and left.value.__class__ is int:
                return left.value
        raise _KernelRefused("non-affine subscript")

    def _kexpr(self, expr, dovar, written, reads, scalars, state):
        """Vectorized RHS: returns ``(numpy source, float-certain)``.

        Restrictions keep the elementwise result bit-identical to the
        scalar path: affine float-array reads, INTEGER/REAL/DOUBLE
        scalars (runtime-checked numeric), ``+ - *`` freely, ``/``
        only by a nonzero literal with a float-certain side, unary
        sign.  Anything else refuses the kernel."""
        cls = expr.__class__
        if cls is ast.Num:
            return repr(expr.value), expr.value.__class__ is float
        if cls is ast.Var:
            name = expr.name
            if name == dovar:
                state["iv"] = True
                return state["ivname"], False
            if self._kind(name) is not _CELL:
                raise _KernelRefused(f"scalar {name} not a local cell")
            ftype = self._ftype(name)
            if ftype not in (_INT, _REAL, _DOUBLE):
                raise _KernelRefused(f"scalar {name} not numeric")
            slot = self._slot(name)
            temp = scalars.get(slot)
            if temp is None:
                temp = self.temp("_x")
                scalars[slot] = temp
            return temp, ftype is not _INT
        if cls is ast.Apply:
            name = expr.name
            if name in written:
                raise _KernelRefused(f"{name} read after write")
            if self._kind(name) is not _ARRAY \
                    or self._ftype(name) not in (_REAL, _DOUBLE) \
                    or len(expr.args) != 1:
                raise _KernelRefused(f"{name} not a 1-D REAL array")
            offset = self._affine_offset(expr.args[0], dovar)
            key = (self._slot(name), offset)
            temp = reads.get(key)
            if temp is None:
                temp = self.temp("_r")
                reads[key] = temp
            return temp, True
        if cls is ast.UnaryOp and expr.op in ("-", "+"):
            code, certain = self._kexpr(expr.operand, dovar, written,
                                        reads, scalars, state)
            return (f"(-{code})" if expr.op == "-" else code), certain
        if cls is ast.BinOp:
            op = expr.op
            if op not in ("+", "-", "*", "/"):
                raise _KernelRefused(f"operator {op} in kernel body")
            lcode, lcert = self._kexpr(expr.left, dovar, written,
                                       reads, scalars, state)
            rcode, rcert = self._kexpr(expr.right, dovar, written,
                                       reads, scalars, state)
            if op == "/":
                divisor = expr.right
                if divisor.__class__ is not ast.Num \
                        or divisor.value == 0:
                    raise _KernelRefused("division not by a nonzero "
                                         "literal")
                if not (lcert or rcert):
                    raise _KernelRefused("integer division in kernel")
                return f"({lcode} / {rcode})", True
            return f"({lcode} {op} {rcode})", lcert or rcert
        raise _KernelRefused(
            f"{cls.__name__} in kernel body")

    def _emit_kernel(self, stmt, i, plan) -> None:
        self.mat()
        first = self._expr(stmt.first)
        last = self._expr(stmt.last)
        step = self._expr(stmt.step) if stmt.step is not None else "1"
        kf = self.temp("_kf")
        kl = self.temp("_kl")
        ks = self.temp("_ks")
        tr = self.temp("_kt")
        # Guard verdict and slice views depend only on (first, step,
        # trips) and the frame's fast views, which are fixed for the
        # whole invocation — memoize them in function locals so a loop
        # re-entered every outer sweep pays the guard once.
        mk = self.temp("_mk")
        mo = self.temp("_mo")
        self.inits.append(f"{mk} = None")
        self.inits.append(f"{mo} = False")
        self.w(f"{kf} = {first}", stmt.line)
        self.w(f"{kl} = {last}")
        self.w(f"{ks} = {step}")
        self.w(f"if {kf}.__class__ is int and {kl}.__class__ is int "
               f"and {ks}.__class__ is int and {ks} != 0:")
        self.indent += 1
        self.w(f"{tr} = ({kl} - {kf} + {ks}) // {ks}")
        writes = tuple(plan["targets"])
        read_keys = tuple(plan["reads"])
        spec = self.const((writes, read_keys), "_KS")
        self.w(f"if {tr} > 0:")
        self.indent += 1
        self.w(f"if {mk} != ({kf}, {ks}, {tr}):")
        self.indent += 1
        self.w(f"{mk} = ({kf}, {ks}, {tr})")
        self.w(f"{mo} = _kg(frame, {stmt.index}, {spec}, "
               f"{kf}, {ks}, {tr})")
        self.w(f"if {mo}:")
        self.indent += 1
        if plan["need_iv"]:
            self.w(f"{plan['ivname']} = {kf} + {ks} * _arange({tr})")
        wtemps = []
        for (slot, offset), temp in plan["reads"].items():
            self.w(f"{temp} = _ss(_fv[{slot}][0], "
                   f"{kf} + {offset} - _fv[{slot}][1], {ks}, {tr})")
        for slot, offset in plan["targets"]:
            temp = self.temp("_wv")
            wtemps.append(temp)
            self.w(f"{temp} = _ss(_fv[{slot}][0], "
                   f"{kf} + {offset} - _fv[{slot}][1], {ks}, {tr})")
        self.indent -= 2
        self.w(f"if {mo}:")
        self.indent += 1
        scalars = plan["scalars"]
        for slot, temp in scalars.items():
            self.w(f"{temp} = _sl[{slot}].value")
        checks = " and ".join(f"_num2({t})" for t in scalars.values())
        if checks:
            self.w(f"if {checks}:")
            self.indent += 1
        for temp, rhs in zip(wtemps, plan["rhs"]):
            self.w(f"{temp}[...] = {rhs}")
        vslot = self._slot(stmt.var)
        self.w(f"_dofin(_sl[{vslot}], {kf} + {tr} * {ks})")
        self.w(f"_p += {tr} * {plan['w_it']}")
        self.w(f"_n += {tr} * {plan['n_it']}")
        self.w(f"pc = {stmt.terminal + 1}")
        self.w("via = False")
        self.w("continue")
        if checks:
            self.indent -= 1
        self.indent -= 3
        # guard failed: fall through into the generic DO lowering


_GEN_DISPATCH = {
    ast.Assign: _Emitter._g_assign,
    ast.Continue: _Emitter._g_continue,
    ast.Goto: _Emitter._g_goto,
    ast.ComputedGoto: _Emitter._g_computed_goto,
    ast.LogicalIf: _Emitter._g_logical_if,
    ast.IfThen: _Emitter._g_if_then,
    ast.ElseIf: _Emitter._g_else_if,
    ast.Else: _Emitter._g_else,
    ast.EndIf: _Emitter._g_end_if,
    ast.Do: _Emitter._g_do,
    ast.EndDo: _Emitter._g_end_do,
    ast.Call: _Emitter._g_call,
    ast.Return: _Emitter._g_return,
    ast.EndUnit: _Emitter._g_end_unit,
    ast.Stop: _Emitter._g_stop,
    ast.Write: _Emitter._g_write,
    ast.Read: _Emitter._g_read,
}
