"""AST node definitions for the F77 subset.

Expressions are small immutable trees.  Statements are flat records —
each program unit holds a flat statement list with precomputed jump
targets for block constructs, so ``GO TO`` into and out of blocks works
with classic Fortran semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fortran.values import FType


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for expression nodes."""
    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Num(Expr):
    value: int | float
    ftype: FType


@dataclass(frozen=True, slots=True)
class Str(Expr):
    value: str


@dataclass(frozen=True, slots=True)
class LogConst(Expr):
    value: bool


@dataclass(frozen=True, slots=True)
class Var(Expr):
    name: str


@dataclass(frozen=True, slots=True)
class Apply(Expr):
    """``NAME(args)`` — array element, intrinsic or function call.

    Fortran cannot distinguish these syntactically; the interpreter
    resolves by symbol kind at evaluation time.
    """
    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    op: str                # + - * / ** // .EQ. .AND. etc (upper case)
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class UnaryOp(Expr):
    op: str                # - + .NOT.
    operand: Expr


def expr_weight(expr: Expr) -> int:
    """Node count, used as the simulated execution cost of evaluation."""
    if isinstance(expr, BinOp):
        return 1 + expr_weight(expr.left) + expr_weight(expr.right)
    if isinstance(expr, UnaryOp):
        return 1 + expr_weight(expr.operand)
    if isinstance(expr, Apply):
        return 2 + sum(expr_weight(a) for a in expr.args)
    return 1


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
class Stmt:
    """Base class for statements; ``label`` is the numeric label or None."""
    __slots__ = ("label", "line", "weight", "index")

    def __init__(self) -> None:
        self.label: int | None = None
        self.line: int | None = None
        self.weight: int = 1
        self.index: int = -1       # flat position within the unit


class Declaration(Stmt):
    """Type declaration: entities are (name, bounds-exprs|None, char_len)."""

    def __init__(self, ftype: FType,
                 entities: list[tuple[str, list[tuple[Expr, Expr]] | None]]):
        super().__init__()
        self.ftype = ftype
        self.entities = entities


class DimensionDecl(Stmt):
    def __init__(self, entities):
        super().__init__()
        self.entities = entities   # same shape as Declaration.entities


class CommonDecl(Stmt):
    """``COMMON /BLK/ A, B(10)`` — one block per statement in our subset."""

    def __init__(self, block: str,
                 entities: list[tuple[str, list[tuple[Expr, Expr]] | None]]):
        super().__init__()
        self.block = block
        self.entities = entities


class ParameterDecl(Stmt):
    def __init__(self, assignments: list[tuple[str, Expr]]):
        super().__init__()
        self.assignments = assignments


class DataDecl(Stmt):
    """``DATA name /values/`` — scalars and whole arrays only."""

    def __init__(self, items: list[tuple[str, list[Expr]]]):
        super().__init__()
        self.items = items


class ExternalDecl(Stmt):
    def __init__(self, names: list[str]):
        super().__init__()
        self.names = names


class Assign(Stmt):
    def __init__(self, target: Var | Apply, expr: Expr):
        super().__init__()
        self.target = target
        self.expr = expr


class LogicalIf(Stmt):
    """One-line ``IF (cond) statement``."""

    def __init__(self, cond: Expr, body: Stmt):
        super().__init__()
        self.cond = cond
        self.body = body


class IfThen(Stmt):
    """Block IF; ``false_target`` = index of matching ELSE IF/ELSE/END IF."""

    def __init__(self, cond: Expr):
        super().__init__()
        self.cond = cond
        self.false_target: int = -1


class ElseIf(Stmt):
    """Reached by fallthrough = previous branch done -> jump to end."""

    def __init__(self, cond: Expr):
        super().__init__()
        self.cond = cond
        self.false_target: int = -1
        self.end_target: int = -1


class Else(Stmt):
    def __init__(self) -> None:
        super().__init__()
        self.end_target: int = -1


class EndIf(Stmt):
    pass


class Do(Stmt):
    """``DO [label] var = first, last [, step]``.

    ``terminal`` is the flat index of the loop's terminal statement
    (labelled statement or the matching END DO).
    """

    def __init__(self, var: str, first: Expr, last: Expr, step: Expr | None,
                 term_label: int | None):
        super().__init__()
        self.var = var
        self.first = first
        self.last = last
        self.step = step
        self.term_label = term_label
        self.terminal: int = -1


class EndDo(Stmt):
    pass


class Goto(Stmt):
    def __init__(self, target_label: int):
        super().__init__()
        self.target_label = target_label
        self.target: int = -1


class ComputedGoto(Stmt):
    def __init__(self, labels: list[int], selector: Expr):
        super().__init__()
        self.labels = labels
        self.selector = selector
        self.targets: list[int] = []


class Continue(Stmt):
    pass


class Call(Stmt):
    def __init__(self, name: str, args: list[Expr]):
        super().__init__()
        self.name = name
        self.args = args


class Return(Stmt):
    pass


class Stop(Stmt):
    def __init__(self, message: str | None = None):
        super().__init__()
        self.message = message


class Write(Stmt):
    """Output: list-directed, or FORMAT-directed when ``fmt_label``
    names a FORMAT statement."""

    def __init__(self, items: list[Expr], fmt_label: int | None = None):
        super().__init__()
        self.items = items
        self.fmt_label = fmt_label
        self.compiled_format = None    # filled lazily by the interpreter


class Read(Stmt):
    """List-directed input: ``READ(*,*) targets``."""

    def __init__(self, targets: list[Expr]):
        super().__init__()
        self.targets = targets


class FormatStmt(Stmt):
    """Recorded but not interpreted (output is list-directed)."""

    def __init__(self, text: str):
        super().__init__()
        self.text = text


class EndUnit(Stmt):
    """The END line of a program unit (acts as RETURN/STOP)."""
