"""Tokenizer for the F77 subset.

Works on one logical statement at a time (continuations are merged by
the line assembler in :mod:`repro.fortran.parser`).  Produces a flat
token list; identifiers and keywords are both NAME tokens — the parser
decides which names are keywords by position, as Fortran requires.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto

from repro._util.errors import FortranError


class TokenKind(Enum):
    NAME = auto()
    INT = auto()
    REAL = auto()
    STRING = auto()
    OP = auto()        # + - * / ** ( ) , = : // and dot-operators
    EOS = auto()       # end of statement


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    pos: int

    def is_op(self, text: str) -> bool:
        return self.kind is TokenKind.OP and self.text == text

    def is_name(self, text: str) -> bool:
        return self.kind is TokenKind.NAME and self.text == text


_DOT_OP = re.compile(r"\.(EQ|NE|LT|LE|GT|GE|AND|OR|NOT|EQV|NEQV|TRUE|FALSE)\.",
                     re.IGNORECASE)
# A REAL literal needs a digit on at least one side of the dot and must
# not be a dot-operator (handled before this pattern is tried).
_NUMBER = re.compile(
    r"(\d+\.\d*([EDed][+-]?\d+)?|\.\d+([EDed][+-]?\d+)?"
    r"|\d+[EDed][+-]?\d+|\d+)")
_NAME = re.compile(r"[A-Za-z][A-Za-z0-9_$]*")
_MULTI_OPS = ("**", "//", "::")
_SINGLE_OPS = "+-*/(),=:<>"


def tokenize_statement(text: str, *, line: int | None = None) -> list[Token]:
    """Tokenize one logical statement (label already stripped)."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t":
            i += 1
            continue
        if ch in "'\"":
            i, token = _scan_string(text, i, line)
            tokens.append(token)
            continue
        if ch == ".":
            match = _DOT_OP.match(text, i)
            if match:
                tokens.append(Token(TokenKind.OP, match.group(0).upper(), i))
                i = match.end()
                continue
            match = _NUMBER.match(text, i)
            if match:
                tokens.append(Token(TokenKind.REAL, match.group(0).upper(), i))
                i = match.end()
                continue
            raise FortranError(f"stray '.' at column {i} in {text!r}",
                               line=line)
        if ch.isdigit():
            # Disambiguate `1.EQ.2`: the dot belongs to the operator.
            intpart = re.match(r"\d+", text[i:])
            after = i + intpart.end()
            if after < n and text[after] == "." and _DOT_OP.match(text, after):
                tokens.append(Token(TokenKind.INT, intpart.group(0), i))
                i = after
                continue
            match = _NUMBER.match(text, i)
            assert match is not None
            literal = match.group(0)
            kind = TokenKind.INT if literal.isdigit() else TokenKind.REAL
            tokens.append(Token(kind, literal.upper(), i))
            i = match.end()
            continue
        match = _NAME.match(text, i)
        if match:
            tokens.append(Token(TokenKind.NAME, match.group(0).upper(), i))
            i = match.end()
            continue
        took_multi = False
        for op in _MULTI_OPS:
            if text.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, i))
                i += len(op)
                took_multi = True
                break
        if took_multi:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token(TokenKind.OP, ch, i))
            i += 1
            continue
        raise FortranError(f"unexpected character {ch!r} at column {i} "
                           f"in {text!r}", line=line)
    tokens.append(Token(TokenKind.EOS, "", n))
    return tokens


def _scan_string(text: str, start: int, line: int | None):
    """Scan a quoted literal; doubled quotes escape themselves."""
    quote = text[start]
    i = start + 1
    out: list[str] = []
    while i < len(text):
        ch = text[i]
        if ch == quote:
            if i + 1 < len(text) and text[i + 1] == quote:
                out.append(quote)
                i += 2
                continue
            return i + 1, Token(TokenKind.STRING, "".join(out), start)
        out.append(ch)
        i += 1
    raise FortranError(f"unterminated string starting at column {start} "
                       f"in {text!r}", line=line)
