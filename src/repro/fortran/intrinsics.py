"""Fortran intrinsic functions for the F77 subset."""

from __future__ import annotations

import math

from repro._util.errors import FortranError


def _int_args(args):
    return [int(a) for a in args]


def _f(args):
    return [float(a) for a in args]


def _sign(a, b):
    magnitude = abs(a)
    return magnitude if b >= 0 else -magnitude


def _check_numeric(name, args):
    for a in args:
        if isinstance(a, (bool, str)):
            raise FortranError(f"{name}: non-numeric argument {a!r}")


# name -> (min arity, max arity or None for variadic, implementation)
INTRINSICS = {
    "ABS": (1, 1, lambda a: abs(a[0])),
    "IABS": (1, 1, lambda a: abs(int(a[0]))),
    "DABS": (1, 1, lambda a: abs(float(a[0]))),
    "MOD": (2, 2, lambda a: math.fmod(a[0], a[1]) if isinstance(a[0], float)
            or isinstance(a[1], float) else int(math.fmod(a[0], a[1]))),
    "AMOD": (2, 2, lambda a: math.fmod(float(a[0]), float(a[1]))),
    "DMOD": (2, 2, lambda a: math.fmod(float(a[0]), float(a[1]))),
    "MAX": (2, None, lambda a: max(a)),
    "MAX0": (2, None, lambda a: max(_int_args(a))),
    "AMAX1": (2, None, lambda a: max(_f(a))),
    "DMAX1": (2, None, lambda a: max(_f(a))),
    "MIN": (2, None, lambda a: min(a)),
    "MIN0": (2, None, lambda a: min(_int_args(a))),
    "AMIN1": (2, None, lambda a: min(_f(a))),
    "DMIN1": (2, None, lambda a: min(_f(a))),
    "SQRT": (1, 1, lambda a: math.sqrt(float(a[0]))),
    "DSQRT": (1, 1, lambda a: math.sqrt(float(a[0]))),
    "EXP": (1, 1, lambda a: math.exp(float(a[0]))),
    "DEXP": (1, 1, lambda a: math.exp(float(a[0]))),
    "LOG": (1, 1, lambda a: math.log(float(a[0]))),
    "ALOG": (1, 1, lambda a: math.log(float(a[0]))),
    "DLOG": (1, 1, lambda a: math.log(float(a[0]))),
    "LOG10": (1, 1, lambda a: math.log10(float(a[0]))),
    "ALOG10": (1, 1, lambda a: math.log10(float(a[0]))),
    "SIN": (1, 1, lambda a: math.sin(float(a[0]))),
    "DSIN": (1, 1, lambda a: math.sin(float(a[0]))),
    "COS": (1, 1, lambda a: math.cos(float(a[0]))),
    "DCOS": (1, 1, lambda a: math.cos(float(a[0]))),
    "TAN": (1, 1, lambda a: math.tan(float(a[0]))),
    "ATAN": (1, 1, lambda a: math.atan(float(a[0]))),
    "ATAN2": (2, 2, lambda a: math.atan2(float(a[0]), float(a[1]))),
    "INT": (1, 1, lambda a: int(a[0])),
    "IFIX": (1, 1, lambda a: int(a[0])),
    "IDINT": (1, 1, lambda a: int(a[0])),
    "NINT": (1, 1, lambda a: int(round(float(a[0])))),
    "REAL": (1, 1, lambda a: float(a[0])),
    "FLOAT": (1, 1, lambda a: float(a[0])),
    "DBLE": (1, 1, lambda a: float(a[0])),
    "SIGN": (2, 2, lambda a: _sign(a[0], a[1])),
    "ISIGN": (2, 2, lambda a: int(_sign(int(a[0]), int(a[1])))),
    "DIM": (2, 2, lambda a: max(a[0] - a[1], 0)),
    "IDIM": (2, 2, lambda a: max(int(a[0]) - int(a[1]), 0)),
    "LEN": (1, 1, lambda a: len(str(a[0]))),
    "ICHAR": (1, 1, lambda a: ord(str(a[0])[0])),
    "CHAR": (1, 1, lambda a: chr(int(a[0]))),
}


def is_intrinsic(name: str) -> bool:
    return name in INTRINSICS


def call_intrinsic(name: str, args: list):
    """Evaluate intrinsic ``name`` on evaluated arguments."""
    low, high, func = INTRINSICS[name]
    if len(args) < low or (high is not None and len(args) > high):
        raise FortranError(f"{name}: expected "
                           f"{low if high == low else f'{low}+'} args, "
                           f"got {len(args)}")
    if name not in ("LEN", "ICHAR", "CHAR"):
        _check_numeric(name, args)
    return func(args)
