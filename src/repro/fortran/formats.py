"""FORMAT-directed output for the F77 subset.

Supports the descriptors that period numerical codes actually used:

* ``Iw``       — integer, right-justified in ``w`` columns;
* ``Fw.d``     — fixed-point real;
* ``Ew.d``     — exponential real (``0.dddE±ee`` form);
* ``Aw`` / ``A`` — character (width optional);
* ``Lw``       — logical (``T``/``F`` right-justified);
* ``nX``       — ``n`` blanks;
* ``'text'``   — literal;
* ``/``        — line break;
* ``rD``       — repeat count on any of the above (``3I5``);
* ``r(...)``   — repeated groups, one nesting level.

If the items outlast the format, the format rescans from the last
top-level group (the F77 reversion rule, simplified to: rescan the
whole format on a fresh line).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

from repro._util.errors import FortranError
from repro.fortran.values import FValue


@dataclass(frozen=True)
class _Edit:
    kind: str            # I F E A L X LIT SLASH
    width: int = 0
    decimals: int = 0
    text: str = ""


@lru_cache(maxsize=512)
def parse_format(text: str) -> tuple[_Edit, ...]:
    """Parse the body of a FORMAT statement (text between parens).

    Results are cached per format text: a PRINT/WRITE inside a loop
    re-parses nothing.  The cache is safe to share because the return
    value is an immutable tuple of frozen ``_Edit``s, keyed only on the
    text — the values later formatted through the edits never reach the
    cache.
    """
    items: list[_Edit] = []
    for token in _split_top_level(text):
        items.extend(_parse_token(token))
    return tuple(items)


def _split_top_level(text: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    in_string = False
    for ch in text:
        if in_string:
            current.append(ch)
            if ch == "'":
                in_string = False
            continue
        if ch == "'":
            in_string = True
            current.append(ch)
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
            continue
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


_SIMPLE = re.compile(
    r"^(\d*)([IFEAL])(\d+)?(?:\.(\d+))?$", re.IGNORECASE)
_BLANKS = re.compile(r"^(\d+)X$", re.IGNORECASE)
_GROUP = re.compile(r"^(\d*)\((.*)\)$")


def _parse_token(token: str) -> list[_Edit]:
    if not token:
        return []
    if token == "/":
        return [_Edit("SLASH")]
    if token.startswith("'"):
        if not token.endswith("'") or len(token) < 2:
            raise FortranError(f"bad FORMAT literal {token!r}")
        return [_Edit("LIT", text=token[1:-1].replace("''", "'"))]
    match = _BLANKS.match(token)
    if match:
        return [_Edit("X", width=int(match.group(1)))]
    match = _GROUP.match(token)
    if match:
        repeat = int(match.group(1) or 1)
        return list(parse_format(match.group(2))) * repeat
    match = _SIMPLE.match(token)
    if match:
        repeat = int(match.group(1) or 1)
        kind = match.group(2).upper()
        width = int(match.group(3) or 0)
        decimals = int(match.group(4) or 0)
        if kind in ("I", "F", "E", "L") and width == 0:
            raise FortranError(f"descriptor {token!r} needs a width")
        return [_Edit(kind, width=width, decimals=decimals)] * repeat
    raise FortranError(f"unsupported FORMAT descriptor {token!r}")


def apply_format(edits: tuple[_Edit, ...] | list[_Edit],
                 values: list[FValue]) -> list[str]:
    """Produce output lines from edit descriptors and values."""
    lines: list[str] = []
    current: list[str] = []
    remaining = list(values)

    def flush() -> None:
        lines.append("".join(current))
        current.clear()

    guard = 0
    while True:
        guard += 1
        if guard > 10_000:
            raise FortranError("FORMAT reversion did not consume items")
        for edit in edits:
            if edit.kind == "LIT":
                current.append(edit.text)
            elif edit.kind == "X":
                current.append(" " * edit.width)
            elif edit.kind == "SLASH":
                flush()
            else:
                if not remaining:
                    flush()
                    return lines
                current.append(_render(edit, remaining.pop(0)))
        if not remaining:
            flush()
            return lines
        flush()   # reversion: fresh line, rescan the format


def _render(edit: _Edit, value: FValue) -> str:
    if edit.kind == "I":
        text = str(int(value))
    elif edit.kind == "F":
        text = f"{float(value):.{edit.decimals}f}"
    elif edit.kind == "E":
        mantissa_digits = max(edit.decimals, 1)
        text = _e_format(float(value), mantissa_digits)
    elif edit.kind == "L":
        text = "T" if value else "F"
    elif edit.kind == "A":
        text = str(value)
        if edit.width:
            text = text[:edit.width].rjust(edit.width)
        return text
    else:   # pragma: no cover
        raise FortranError(f"cannot render edit {edit}")
    if edit.width and len(text) > edit.width:
        return "*" * edit.width       # field overflow, as in Fortran
    return text.rjust(edit.width)


def _e_format(value: float, digits: int) -> str:
    """Fortran Ew.d form: 0.dddE+ee."""
    if value == 0.0:
        mantissa, exponent = 0.0, 0
    else:
        from math import floor, log10
        exponent = floor(log10(abs(value))) + 1
        mantissa = value / 10.0 ** exponent
        # Rounding may push the mantissa to 1.0; renormalise.
        if round(abs(mantissa), digits) >= 1.0:
            mantissa /= 10.0
            exponent += 1
    return f"{mantissa:.{digits}f}".replace("0.", "0.", 1) + \
        f"E{exponent:+03d}"
