"""Parser for the F77 subset: source text → program units with flat
statement lists and resolved jump targets."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro._util.errors import FortranError
from repro.fortran import ast_nodes as ast
from repro.fortran.ast_nodes import Expr, expr_weight
from repro.fortran.lexer import Token, TokenKind, tokenize_statement
from repro.fortran.values import FType, parse_type_name


# ----------------------------------------------------------------------
# program containers
# ----------------------------------------------------------------------
@dataclass(eq=False)     # identity semantics: hashable + weakref cache key
class ProgramUnit:
    """One PROGRAM / SUBROUTINE / FUNCTION."""

    kind: str                      # 'program' | 'subroutine' | 'function'
    name: str
    params: list[str]
    result_type: FType | None      # for functions
    statements: list[ast.Stmt]
    label_index: dict[int, int]    # statement label -> flat index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.kind} {self.name} ({len(self.statements)} stmts)>"


@dataclass
class Program:
    """A parsed source file: all units, main unit identified."""

    units: dict[str, ProgramUnit]
    main: ProgramUnit | None

    def unit(self, name: str) -> ProgramUnit:
        try:
            return self.units[name.upper()]
        except KeyError as exc:
            raise FortranError(f"no program unit named {name}") from exc


# ----------------------------------------------------------------------
# line assembly
# ----------------------------------------------------------------------
_LABELLED = re.compile(r"^\s*(\d{1,5})\s+(.*)$")


def _assemble_lines(source: str) -> list[tuple[int | None, str, int]]:
    """Merge continuations and split labels.

    Returns (label, statement-text, first-line-number) triples.
    Comments (``C``/``*``/``!`` in column one) and blank lines vanish.
    A trailing ``&`` continues onto the next line.
    """
    logical: list[tuple[int | None, str, int]] = []
    pending: str | None = None
    pending_line = 0
    for lineno, raw in enumerate(source.split("\n"), start=1):
        if raw[:1] in ("C", "c", "*", "!"):
            continue
        stripped = raw.strip()
        if not stripped:
            continue
        # Classic continuation: a line starting with '&' extends the
        # previous logical line (the macro layer emits this style).
        if stripped.startswith("&") and pending is None and logical:
            label, text, first = logical.pop()
            logical.append((label, text + " " + stripped[1:].strip(), first))
            continue
        if pending is not None:
            merged = pending + " " + stripped
        else:
            merged = stripped
            pending_line = lineno
        if merged.endswith("&"):
            pending = merged[:-1].rstrip()
            continue
        pending = None
        label: int | None = None
        match = _LABELLED.match(merged)
        if match:
            label = int(match.group(1))
            merged = match.group(2)
        logical.append((label, merged, pending_line))
    if pending is not None:
        raise FortranError("source ends inside a continued statement",
                           line=pending_line)
    return logical


# ----------------------------------------------------------------------
# token cursor
# ----------------------------------------------------------------------
class _Cursor:
    def __init__(self, tokens: list[Token], line: int | None) -> None:
        self.tokens = tokens
        self.pos = 0
        self.line = line

    def peek(self, ahead: int = 0) -> Token:
        idx = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOS:
            self.pos += 1
        return token

    def accept_op(self, text: str) -> bool:
        if self.peek().is_op(text):
            self.next()
            return True
        return False

    def accept_name(self, text: str) -> bool:
        if self.peek().is_name(text):
            self.next()
            return True
        return False

    def expect_op(self, text: str) -> None:
        if not self.accept_op(text):
            raise FortranError(f"expected {text!r}, found "
                               f"{self.peek().text!r}", line=self.line)

    def expect_name_token(self) -> str:
        token = self.next()
        if token.kind is not TokenKind.NAME:
            raise FortranError(f"expected a name, found {token.text!r}",
                               line=self.line)
        return token.text

    def at_eos(self) -> bool:
        return self.peek().kind is TokenKind.EOS

    def expect_eos(self) -> None:
        if not self.at_eos():
            raise FortranError(
                f"trailing tokens starting at {self.peek().text!r}",
                line=self.line)


# ----------------------------------------------------------------------
# expression parsing (precedence climbing)
# ----------------------------------------------------------------------
def parse_expression(cursor: _Cursor) -> Expr:
    return _parse_or(cursor)


def _parse_or(cursor: _Cursor) -> Expr:
    left = _parse_and(cursor)
    while cursor.accept_op(".OR."):
        left = ast.BinOp(".OR.", left, _parse_and(cursor))
    return left


def _parse_and(cursor: _Cursor) -> Expr:
    left = _parse_not(cursor)
    while cursor.accept_op(".AND."):
        left = ast.BinOp(".AND.", left, _parse_not(cursor))
    return left


def _parse_not(cursor: _Cursor) -> Expr:
    if cursor.accept_op(".NOT."):
        return ast.UnaryOp(".NOT.", _parse_not(cursor))
    return _parse_relational(cursor)


_REL_OPS = (".EQ.", ".NE.", ".LT.", ".LE.", ".GT.", ".GE.")


def _parse_relational(cursor: _Cursor) -> Expr:
    left = _parse_additive(cursor)
    for op in _REL_OPS:
        if cursor.accept_op(op):
            return ast.BinOp(op, left, _parse_additive(cursor))
    return left


def _parse_additive(cursor: _Cursor) -> Expr:
    # Leading sign
    if cursor.accept_op("-"):
        left: Expr = ast.UnaryOp("-", _parse_term(cursor))
    elif cursor.accept_op("+"):
        left = _parse_term(cursor)
    else:
        left = _parse_term(cursor)
    while True:
        if cursor.accept_op("+"):
            left = ast.BinOp("+", left, _parse_term(cursor))
        elif cursor.accept_op("-"):
            left = ast.BinOp("-", left, _parse_term(cursor))
        elif cursor.accept_op("//"):
            left = ast.BinOp("//", left, _parse_term(cursor))
        else:
            return left


def _parse_term(cursor: _Cursor) -> Expr:
    left = _parse_power(cursor)
    while True:
        if cursor.accept_op("*"):
            left = ast.BinOp("*", left, _parse_power(cursor))
        elif cursor.accept_op("/"):
            left = ast.BinOp("/", left, _parse_power(cursor))
        else:
            return left


def _parse_power(cursor: _Cursor) -> Expr:
    base = _parse_primary(cursor)
    if cursor.accept_op("**"):
        # Right-associative; exponent may carry its own unary minus.
        if cursor.accept_op("-"):
            return ast.BinOp("**", base, ast.UnaryOp("-", _parse_power(cursor)))
        return ast.BinOp("**", base, _parse_power(cursor))
    return base


def _parse_primary(cursor: _Cursor) -> Expr:
    token = cursor.peek()
    if token.kind is TokenKind.INT:
        cursor.next()
        return ast.Num(int(token.text), FType.INTEGER)
    if token.kind is TokenKind.REAL:
        cursor.next()
        text = token.text.replace("D", "E")
        ftype = FType.DOUBLE if "D" in token.text else FType.REAL
        return ast.Num(float(text), ftype)
    if token.kind is TokenKind.STRING:
        cursor.next()
        return ast.Str(token.text)
    if token.is_op(".TRUE."):
        cursor.next()
        return ast.LogConst(True)
    if token.is_op(".FALSE."):
        cursor.next()
        return ast.LogConst(False)
    if token.is_op("("):
        cursor.next()
        inner = parse_expression(cursor)
        cursor.expect_op(")")
        return inner
    if token.is_op("-"):
        cursor.next()
        return ast.UnaryOp("-", _parse_primary(cursor))
    if token.kind is TokenKind.NAME:
        cursor.next()
        if cursor.accept_op("("):
            args: list[Expr] = []
            if not cursor.peek().is_op(")"):
                args.append(parse_expression(cursor))
                while cursor.accept_op(","):
                    args.append(parse_expression(cursor))
            cursor.expect_op(")")
            return ast.Apply(token.text, tuple(args))
        return ast.Var(token.text)
    raise FortranError(f"unexpected token {token.text!r} in expression",
                       line=cursor.line)


# ----------------------------------------------------------------------
# statement parsing
# ----------------------------------------------------------------------
_TYPE_KEYWORDS = ("INTEGER", "REAL", "LOGICAL", "COMPLEX", "CHARACTER",
                  "DOUBLE")


def _looks_like_assignment(cursor: _Cursor) -> bool:
    """True if the statement is ``name [ (subs) ] = expr``.

    Needed because keywords are not reserved: ``IF(I) = 3`` assigns to
    an array named IF.  We scan past an optional parenthesized group and
    look for ``=``.
    """
    if cursor.peek().kind is not TokenKind.NAME:
        return False
    i = cursor.pos + 1
    tokens = cursor.tokens
    if i < len(tokens) and tokens[i].is_op("("):
        depth = 1
        i += 1
        while i < len(tokens) and depth:
            if tokens[i].is_op("("):
                depth += 1
            elif tokens[i].is_op(")"):
                depth -= 1
            i += 1
    return i < len(tokens) and tokens[i].is_op("=")


def _parse_entity_list(cursor: _Cursor):
    """Parse ``A, B(10), C(0:N, M)`` into entity tuples."""
    entities: list[tuple[str, list[tuple[Expr | None, Expr]] | None]] = []
    while True:
        name = cursor.expect_name_token()
        bounds: list[tuple[Expr | None, Expr]] | None = None
        if cursor.accept_op("("):
            bounds = []
            while True:
                first = parse_expression(cursor)
                if cursor.accept_op(":"):
                    second = parse_expression(cursor)
                    bounds.append((first, second))
                else:
                    bounds.append((None, first))
                if not cursor.accept_op(","):
                    break
            cursor.expect_op(")")
        entities.append((name, bounds))
        if not cursor.accept_op(","):
            break
    return entities


def _parse_statement(cursor: _Cursor, raw_text: str) -> ast.Stmt:
    """Parse one statement (cursor positioned at its first token)."""
    # Assignment has priority over keyword forms (non-reserved words).
    if _looks_like_assignment(cursor):
        target = _parse_primary(cursor)
        if not isinstance(target, (ast.Var, ast.Apply)):
            raise FortranError("bad assignment target", line=cursor.line)
        cursor.expect_op("=")
        expr = parse_expression(cursor)
        cursor.expect_eos()
        return ast.Assign(target, expr)

    token = cursor.peek()
    if token.kind is not TokenKind.NAME:
        raise FortranError(f"cannot parse statement {raw_text!r}",
                           line=cursor.line)
    keyword = token.text

    if keyword in _TYPE_KEYWORDS:
        return _parse_declaration(cursor)
    if keyword == "DIMENSION":
        cursor.next()
        return ast.DimensionDecl(_parse_entity_list(cursor))
    if keyword == "COMMON":
        return _parse_common(cursor)
    if keyword == "PARAMETER":
        return _parse_parameter(cursor)
    if keyword == "DATA":
        return _parse_data(cursor)
    if keyword == "EXTERNAL" or keyword == "INTRINSIC":
        cursor.next()
        names = [cursor.expect_name_token()]
        while cursor.accept_op(","):
            names.append(cursor.expect_name_token())
        cursor.expect_eos()
        return ast.ExternalDecl(names)
    if keyword == "IF":
        return _parse_if(cursor, raw_text)
    if keyword == "ELSEIF":
        cursor.next()
        cursor.expect_op("(")
        cond = parse_expression(cursor)
        cursor.expect_op(")")
        if not cursor.accept_name("THEN"):
            raise FortranError("ELSE IF must end with THEN", line=cursor.line)
        return ast.ElseIf(cond)
    if keyword == "ELSE":
        cursor.next()
        if cursor.accept_name("IF"):
            cursor.expect_op("(")
            cond = parse_expression(cursor)
            cursor.expect_op(")")
            if not cursor.accept_name("THEN"):
                raise FortranError("ELSE IF must end with THEN",
                                   line=cursor.line)
            return ast.ElseIf(cond)
        cursor.expect_eos()
        return ast.Else()
    if keyword == "ENDIF":
        cursor.next()
        cursor.expect_eos()
        return ast.EndIf()
    if keyword == "END":
        cursor.next()
        if cursor.accept_name("IF"):
            cursor.expect_eos()
            return ast.EndIf()
        if cursor.accept_name("DO"):
            cursor.expect_eos()
            return ast.EndDo()
        cursor.expect_eos()
        return ast.EndUnit()
    if keyword == "ENDDO":
        cursor.next()
        cursor.expect_eos()
        return ast.EndDo()
    if keyword == "DO":
        return _parse_do(cursor)
    if keyword == "GOTO":
        cursor.next()
        return _parse_goto_tail(cursor)
    if keyword == "GO":
        cursor.next()
        if not cursor.accept_name("TO"):
            raise FortranError("expected TO after GO", line=cursor.line)
        return _parse_goto_tail(cursor)
    if keyword == "CONTINUE":
        cursor.next()
        cursor.expect_eos()
        return ast.Continue()
    if keyword == "CALL":
        cursor.next()
        name = cursor.expect_name_token()
        args: list[Expr] = []
        if cursor.accept_op("("):
            if not cursor.peek().is_op(")"):
                args.append(parse_expression(cursor))
                while cursor.accept_op(","):
                    args.append(parse_expression(cursor))
            cursor.expect_op(")")
        cursor.expect_eos()
        return ast.Call(name, args)
    if keyword == "RETURN":
        cursor.next()
        cursor.expect_eos()
        return ast.Return()
    if keyword == "STOP":
        cursor.next()
        message = None
        if not cursor.at_eos():
            token = cursor.next()
            message = token.text
        cursor.expect_eos()
        return ast.Stop(message)
    if keyword == "WRITE":
        return _parse_write(cursor)
    if keyword == "READ":
        return _parse_read(cursor)
    if keyword == "PRINT":
        cursor.next()
        if not cursor.accept_op("*"):
            raise FortranError("only PRINT * is supported", line=cursor.line)
        items: list[Expr] = []
        if cursor.accept_op(","):
            items.append(parse_expression(cursor))
            while cursor.accept_op(","):
                items.append(parse_expression(cursor))
        cursor.expect_eos()
        return ast.Write(items)
    if keyword == "FORMAT":
        return ast.FormatStmt(raw_text)
    if keyword == "IMPLICIT":
        # IMPLICIT NONE accepted and ignored (we type-check dynamically).
        cursor.next()
        if cursor.accept_name("NONE"):
            cursor.expect_eos()
            return ast.Continue()
        raise FortranError("only IMPLICIT NONE is supported",
                           line=cursor.line)
    raise FortranError(f"unsupported statement {raw_text!r}",
                       line=cursor.line)


def _parse_declaration(cursor: _Cursor) -> ast.Stmt:
    first = cursor.expect_name_token()
    if first == "DOUBLE":
        if not cursor.accept_name("PRECISION"):
            raise FortranError("expected PRECISION after DOUBLE",
                               line=cursor.line)
        ftype = FType.DOUBLE
    elif first == "CHARACTER":
        ftype = FType.CHARACTER
        # CHARACTER*n — length recorded but not enforced.
        if cursor.accept_op("*"):
            cursor.next()
    else:
        ftype = parse_type_name(first)
    # FUNCTION prefixed by a type is handled by the unit splitter, so
    # here the remainder is always an entity list.
    entities = _parse_entity_list(cursor)
    cursor.expect_eos()
    return ast.Declaration(ftype, entities)


def _parse_common(cursor: _Cursor) -> ast.Stmt:
    cursor.next()
    cursor.expect_op("/")
    block = cursor.expect_name_token()
    cursor.expect_op("/")
    entities = _parse_entity_list(cursor)
    cursor.expect_eos()
    return ast.CommonDecl(block, entities)


def _parse_parameter(cursor: _Cursor) -> ast.Stmt:
    cursor.next()
    cursor.expect_op("(")
    assignments: list[tuple[str, Expr]] = []
    while True:
        name = cursor.expect_name_token()
        cursor.expect_op("=")
        assignments.append((name, parse_expression(cursor)))
        if not cursor.accept_op(","):
            break
    cursor.expect_op(")")
    cursor.expect_eos()
    return ast.ParameterDecl(assignments)


def _parse_data_constant(cursor: _Cursor) -> Expr:
    """A DATA value: signed literal, logical, string or named constant.

    Full expressions are not allowed here — the closing ``/`` would be
    indistinguishable from division.
    """
    negate = False
    if cursor.accept_op("-"):
        negate = True
    elif cursor.accept_op("+"):
        pass
    token = cursor.next()
    if token.kind is TokenKind.INT:
        value: Expr = ast.Num(int(token.text), FType.INTEGER)
    elif token.kind is TokenKind.REAL:
        value = ast.Num(float(token.text.replace("D", "E")), FType.REAL)
    elif token.kind is TokenKind.STRING:
        value = ast.Str(token.text)
    elif token.is_op(".TRUE."):
        value = ast.LogConst(True)
    elif token.is_op(".FALSE."):
        value = ast.LogConst(False)
    elif token.kind is TokenKind.NAME:
        value = ast.Var(token.text)
    else:
        raise FortranError(f"bad DATA constant {token.text!r}",
                           line=cursor.line)
    if negate:
        return ast.UnaryOp("-", value)
    return value


def _parse_data(cursor: _Cursor) -> ast.Stmt:
    cursor.next()
    items: list[tuple[str, list[Expr]]] = []
    while True:
        name = cursor.expect_name_token()
        cursor.expect_op("/")
        values: list[Expr] = [_parse_data_constant(cursor)]
        while cursor.accept_op(","):
            values.append(_parse_data_constant(cursor))
        cursor.expect_op("/")
        items.append((name, values))
        if not cursor.accept_op(","):
            break
    cursor.expect_eos()
    return ast.DataDecl(items)


def _parse_if(cursor: _Cursor, raw_text: str) -> ast.Stmt:
    cursor.next()
    cursor.expect_op("(")
    cond = parse_expression(cursor)
    cursor.expect_op(")")
    if cursor.accept_name("THEN"):
        cursor.expect_eos()
        return ast.IfThen(cond)
    # One-line logical IF: parse the contained simple statement.
    body = _parse_statement(cursor, raw_text)
    if isinstance(body, (ast.IfThen, ast.ElseIf, ast.Else, ast.EndIf,
                         ast.Do, ast.EndDo, ast.Declaration)):
        raise FortranError("invalid statement in logical IF",
                           line=cursor.line)
    return ast.LogicalIf(cond, body)


def _parse_do(cursor: _Cursor) -> ast.Stmt:
    cursor.next()
    term_label: int | None = None
    if cursor.peek().kind is TokenKind.INT:
        term_label = int(cursor.next().text)
    var = cursor.expect_name_token()
    cursor.expect_op("=")
    first = parse_expression(cursor)
    cursor.expect_op(",")
    last = parse_expression(cursor)
    step = None
    if cursor.accept_op(","):
        step = parse_expression(cursor)
    cursor.expect_eos()
    return ast.Do(var, first, last, step, term_label)


def _parse_goto_tail(cursor: _Cursor) -> ast.Stmt:
    if cursor.accept_op("("):
        labels = [int(cursor.next().text)]
        while cursor.accept_op(","):
            labels.append(int(cursor.next().text))
        cursor.expect_op(")")
        cursor.accept_op(",")
        selector = parse_expression(cursor)
        cursor.expect_eos()
        return ast.ComputedGoto(labels, selector)
    token = cursor.next()
    if token.kind is not TokenKind.INT:
        raise FortranError(f"expected label after GO TO, found "
                           f"{token.text!r}", line=cursor.line)
    cursor.expect_eos()
    return ast.Goto(int(token.text))


def _parse_write(cursor: _Cursor) -> ast.Stmt:
    cursor.next()
    cursor.expect_op("(")
    # Unit: * or 6 treated as stdout; anything else rejected.
    unit_token = cursor.next()
    if not (unit_token.is_op("*") or
            (unit_token.kind is TokenKind.INT and unit_token.text == "6")):
        raise FortranError("only WRITE(*,*) / WRITE(6,*) supported",
                           line=cursor.line)
    cursor.expect_op(",")
    fmt_token = cursor.next()
    fmt_label = None
    if fmt_token.kind is TokenKind.INT:
        fmt_label = int(fmt_token.text)
    elif not fmt_token.is_op("*"):
        raise FortranError("WRITE format must be * or a FORMAT label",
                           line=cursor.line)
    cursor.expect_op(")")
    items: list[Expr] = []
    if not cursor.at_eos():
        items.append(parse_expression(cursor))
        while cursor.accept_op(","):
            items.append(parse_expression(cursor))
    cursor.expect_eos()
    return ast.Write(items, fmt_label)


def _parse_read(cursor: _Cursor) -> ast.Stmt:
    cursor.next()
    cursor.expect_op("(")
    unit_token = cursor.next()
    if not (unit_token.is_op("*") or
            (unit_token.kind is TokenKind.INT and unit_token.text == "5")):
        raise FortranError("only READ(*,*) / READ(5,*) supported",
                           line=cursor.line)
    cursor.expect_op(",")
    if not cursor.accept_op("*"):
        raise FortranError("only list-directed READ supported",
                           line=cursor.line)
    cursor.expect_op(")")
    targets: list[Expr] = []
    targets.append(_parse_primary(cursor))
    while cursor.accept_op(","):
        targets.append(_parse_primary(cursor))
    cursor.expect_eos()
    for target in targets:
        if not isinstance(target, (ast.Var, ast.Apply)):
            raise FortranError("READ target must be a variable",
                               line=cursor.line)
    return ast.Read(targets)


# ----------------------------------------------------------------------
# unit splitting & target resolution
# ----------------------------------------------------------------------
_UNIT_HEADER = re.compile(
    r"^\s*(?:(INTEGER|REAL|LOGICAL|DOUBLE\s+PRECISION)\s+)?"
    r"(PROGRAM|SUBROUTINE|FUNCTION)\s+([A-Za-z][A-Za-z0-9_$]*)\s*"
    r"(\(([^)]*)\))?\s*$",
    re.IGNORECASE)


def parse_source(source: str) -> Program:
    """Parse a full source file into a :class:`Program`."""
    logical = _assemble_lines(source)
    units: dict[str, ProgramUnit] = {}
    main: ProgramUnit | None = None
    i = 0
    n = len(logical)
    while i < n:
        label, text, lineno = logical[i]
        header = _UNIT_HEADER.match(text)
        if header is None:
            raise FortranError(
                f"expected PROGRAM/SUBROUTINE/FUNCTION, found {text!r}",
                line=lineno)
        type_prefix, kind_word, name, _, param_text = header.groups()
        kind = kind_word.lower()
        params: list[str] = []
        if param_text:
            params = [p.strip().upper() for p in param_text.split(",")
                      if p.strip()]
        result_type = None
        if type_prefix:
            result_type = parse_type_name(" ".join(type_prefix.upper()
                                                   .split()))
        i += 1
        body: list[tuple[int | None, str, int]] = []
        depth_guard = 0
        while i < n:
            _, stext, _ = logical[i]
            if re.match(r"^\s*END\s*$", stext, re.IGNORECASE) and \
                    depth_guard == 0:
                body.append(logical[i])
                i += 1
                break
            body.append(logical[i])
            i += 1
        unit = _build_unit(kind, name.upper(), params, result_type, body)
        units[unit.name] = unit
        if kind == "program":
            if main is not None:
                raise FortranError("multiple PROGRAM units")
            main = unit
    return Program(units=units, main=main)


def _build_unit(kind: str, name: str, params: list[str],
                result_type: FType | None,
                body: list[tuple[int | None, str, int]]) -> ProgramUnit:
    statements: list[ast.Stmt] = []
    label_index: dict[int, int] = {}
    for label, text, lineno in body:
        cursor = _Cursor(tokenize_statement(text, line=lineno), lineno)
        try:
            stmt = _parse_statement(cursor, text)
        except FortranError:
            raise
        stmt.label = label
        stmt.line = lineno
        stmt.weight = _statement_weight(stmt)
        if label is not None:
            if label in label_index:
                raise FortranError(f"duplicate label {label}", line=lineno,
                                   unit=name)
            label_index[label] = len(statements)
        statements.append(stmt)
    if not statements or not isinstance(statements[-1], ast.EndUnit):
        raise FortranError(f"unit {name} missing END", unit=name)
    for idx, stmt in enumerate(statements):
        stmt.index = idx
    unit = ProgramUnit(kind=kind, name=name, params=params,
                       result_type=result_type, statements=statements,
                       label_index=label_index)
    _resolve_targets(unit)
    return unit


def _statement_weight(stmt: ast.Stmt) -> int:
    """Simulated cost of one execution of this statement (in cycles)."""
    if isinstance(stmt, ast.Assign):
        return 1 + expr_weight(stmt.expr) + expr_weight(stmt.target)
    if isinstance(stmt, ast.LogicalIf):
        return 1 + expr_weight(stmt.cond) + _statement_weight(stmt.body)
    if isinstance(stmt, (ast.IfThen, ast.ElseIf)):
        return 1 + expr_weight(stmt.cond)
    if isinstance(stmt, ast.Do):
        return 2 + expr_weight(stmt.first) + expr_weight(stmt.last)
    if isinstance(stmt, ast.Call):
        return 2 + sum(expr_weight(a) for a in stmt.args)
    if isinstance(stmt, ast.Write):
        return 2 + sum(expr_weight(e) for e in stmt.items)
    return 1


def _resolve_targets(unit: ProgramUnit) -> None:
    """Fill jump targets: GOTOs, IF-block arms, DO terminals."""
    statements = unit.statements
    # GOTO labels
    for stmt in statements:
        if isinstance(stmt, ast.Goto):
            stmt.target = _label_to_index(unit, stmt.target_label, stmt)
        elif isinstance(stmt, ast.ComputedGoto):
            stmt.targets = [_label_to_index(unit, lbl, stmt)
                            for lbl in stmt.labels]
        elif isinstance(stmt, ast.LogicalIf) and \
                isinstance(stmt.body, ast.Goto):
            stmt.body.target = _label_to_index(unit, stmt.body.target_label,
                                               stmt)

    # IF-blocks: match arms with a stack.
    stack: list[list[int]] = []
    for idx, stmt in enumerate(statements):
        if isinstance(stmt, ast.IfThen):
            stack.append([idx])
        elif isinstance(stmt, (ast.ElseIf, ast.Else)):
            if not stack:
                raise FortranError("ELSE without IF", line=stmt.line,
                                   unit=unit.name)
            stack[-1].append(idx)
        elif isinstance(stmt, ast.EndIf):
            if not stack:
                raise FortranError("END IF without IF", line=stmt.line,
                                   unit=unit.name)
            arm_indices = stack.pop()
            arm_indices.append(idx)
            for a, arm_idx in enumerate(arm_indices[:-1]):
                arm = statements[arm_idx]
                nxt = arm_indices[a + 1]
                if isinstance(arm, ast.IfThen):
                    arm.false_target = nxt
                elif isinstance(arm, ast.ElseIf):
                    arm.false_target = nxt
                    arm.end_target = idx
                elif isinstance(arm, ast.Else):
                    arm.end_target = idx
    if stack:
        raise FortranError("IF block not closed", unit=unit.name)

    # DO loops: labelled terminal or matching END DO.
    do_stack: list[int] = []
    for idx, stmt in enumerate(statements):
        if isinstance(stmt, ast.Do):
            if stmt.term_label is not None:
                stmt.terminal = _label_to_index(unit, stmt.term_label, stmt)
                if stmt.terminal <= idx:
                    raise FortranError(
                        f"DO terminal label {stmt.term_label} precedes loop",
                        line=stmt.line, unit=unit.name)
            else:
                do_stack.append(idx)
        elif isinstance(stmt, ast.EndDo):
            if not do_stack:
                raise FortranError("END DO without DO", line=stmt.line,
                                   unit=unit.name)
            open_idx = do_stack.pop()
            statements[open_idx].terminal = idx
    if do_stack:
        raise FortranError("DO loop not closed", unit=unit.name)


def _label_to_index(unit: ProgramUnit, label: int, stmt: ast.Stmt) -> int:
    try:
        return unit.label_index[label]
    except KeyError as exc:
        raise FortranError(f"undefined label {label}", line=stmt.line,
                           unit=unit.name) from exc
