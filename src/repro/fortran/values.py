"""Runtime values for the F77 subset interpreter.

Scalar values are plain Python objects (``int``, ``float``, ``bool``,
``str``) tagged by a declared :class:`FType`.  Arrays are
:class:`FArray` — a numpy-backed block with Fortran dimension semantics
(column-major storage order, per-dimension lower bounds, default 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro._util.errors import FortranError


class FType(Enum):
    INTEGER = "INTEGER"
    REAL = "REAL"
    DOUBLE = "DOUBLE PRECISION"
    LOGICAL = "LOGICAL"
    CHARACTER = "CHARACTER"

    @property
    def numpy_dtype(self):
        return {
            FType.INTEGER: np.int64,
            FType.REAL: np.float64,   # we do not model 32-bit rounding
            FType.DOUBLE: np.float64,
            FType.LOGICAL: np.bool_,
            FType.CHARACTER: object,
        }[self]

    @property
    def zero(self):
        return {
            FType.INTEGER: 0,
            FType.REAL: 0.0,
            FType.DOUBLE: 0.0,
            FType.LOGICAL: False,
            FType.CHARACTER: "",
        }[self]


#: A scalar Fortran value as represented in Python.
FValue = int | float | bool | str


def parse_type_name(name: str) -> FType:
    """Map a declaration keyword (already upper-cased) to an FType."""
    cleaned = " ".join(name.split())
    if cleaned.startswith("CHARACTER"):
        return FType.CHARACTER
    try:
        return FType(cleaned)
    except ValueError as exc:
        raise FortranError(f"unknown type {name!r}") from exc


def default_type_for(name: str) -> FType:
    """Implicit typing: I-N are INTEGER, everything else REAL."""
    return FType.INTEGER if name[0] in "IJKLMN" else FType.REAL


def ftype_of(value: FValue) -> FType:
    """Classify a Python scalar as a Fortran type."""
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return FType.LOGICAL
    if isinstance(value, (int, np.integer)):
        return FType.INTEGER
    if isinstance(value, (float, np.floating)):
        return FType.REAL
    if isinstance(value, str):
        return FType.CHARACTER
    raise FortranError(f"value {value!r} has no Fortran type")


def coerce_assign(ftype: FType, value: FValue) -> FValue:
    """Convert ``value`` for assignment into a variable of ``ftype``.

    Follows F77 rules: numeric types interconvert (REAL→INTEGER
    truncates toward zero); LOGICAL and CHARACTER only accept their own
    kind.
    """
    if ftype is FType.INTEGER:
        if isinstance(value, bool) or isinstance(value, str):
            raise FortranError(f"cannot assign {ftype_of(value).value} "
                               "to INTEGER")
        return int(value)
    if ftype in (FType.REAL, FType.DOUBLE):
        if isinstance(value, bool) or isinstance(value, str):
            raise FortranError(f"cannot assign {ftype_of(value).value} "
                               f"to {ftype.value}")
        return float(value)
    if ftype is FType.LOGICAL:
        if not isinstance(value, (bool, np.bool_)):
            raise FortranError("cannot assign non-LOGICAL to LOGICAL")
        return bool(value)
    if ftype is FType.CHARACTER:
        if not isinstance(value, str):
            raise FortranError("cannot assign non-CHARACTER to CHARACTER")
        return value
    raise FortranError(f"unsupported type {ftype}")  # pragma: no cover


@dataclass
class FArray:
    """A Fortran array: numpy storage + per-dimension lower bounds.

    ``fe_holder`` is a one-slot shared box for the lazily-allocated
    per-element full/empty state used by the HEP machine model
    (hardware access state on every memory cell).  It is *shared
    between all views* of the same storage (``reinterpret`` passes it
    along), and indexed by flat storage position, so a produce through
    one process's view of a COMMON block is seen by every other
    process's view.
    """

    ftype: FType
    lower: tuple[int, ...]
    shape: tuple[int, ...]
    data: np.ndarray
    fe_holder: list = None  # [np.ndarray | None]; shared across views

    def __post_init__(self) -> None:
        if self.fe_holder is None:
            self.fe_holder = [None]

    def storage_id(self) -> int:
        """Identity of the underlying buffer, stable across views."""
        interface = self.data.__array_interface__
        return interface["data"][0]

    def flat_index(self, subscripts: tuple[int, ...]) -> int:
        """Flat (column-major) storage position of an element —
        identical for every view of the same storage."""
        zero_based = self._index(subscripts)
        return int(np.ravel_multi_index(zero_based, self.shape,
                                        order="F"))

    def fe_state(self, subscripts: tuple[int, ...]) -> bool:
        fe = self.fe_holder[0]
        index = self.flat_index(subscripts)
        if fe is None or index >= len(fe):
            return False
        return bool(fe[index])

    def set_fe(self, subscripts: tuple[int, ...], full: bool) -> None:
        index = self.flat_index(subscripts)
        fe = self.fe_holder[0]
        if fe is None or len(fe) <= index:
            grown = np.zeros(max(self.size, index + 1,
                                 0 if fe is None else len(fe)),
                             dtype=np.bool_)
            if fe is not None:
                grown[:len(fe)] = fe
            self.fe_holder[0] = grown
        self.fe_holder[0][index] = full

    @classmethod
    def allocate(cls, ftype: FType, bounds: list[tuple[int, int]]) -> FArray:
        """Create a zero-filled array from (lower, upper) bound pairs."""
        lower = tuple(lo for lo, _ in bounds)
        shape = tuple(hi - lo + 1 for lo, hi in bounds)
        if any(extent <= 0 for extent in shape):
            raise FortranError(f"non-positive array extent in bounds "
                               f"{bounds}")
        if ftype is FType.CHARACTER:
            data = np.full(shape, "", dtype=object, order="F")
        else:
            data = np.zeros(shape, dtype=ftype.numpy_dtype, order="F")
        return cls(ftype=ftype, lower=lower, shape=shape, data=data)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def _index(self, subscripts: tuple[int, ...]) -> tuple[int, ...]:
        if len(subscripts) != len(self.shape):
            raise FortranError(
                f"array rank {len(self.shape)} referenced with "
                f"{len(subscripts)} subscripts")
        out = []
        for sub, lo, extent in zip(subscripts, self.lower, self.shape):
            offset = int(sub) - lo
            if not 0 <= offset < extent:
                raise FortranError(
                    f"subscript {sub} out of bounds [{lo}, {lo + extent - 1}]")
            out.append(offset)
        return tuple(out)

    def get(self, subscripts: tuple[int, ...]) -> FValue:
        raw = self.data[self._index(subscripts)]
        if self.ftype is FType.INTEGER:
            return int(raw)
        if self.ftype in (FType.REAL, FType.DOUBLE):
            return float(raw)
        if self.ftype is FType.LOGICAL:
            return bool(raw)
        return raw if raw is not None else ""

    def set(self, subscripts: tuple[int, ...], value: FValue) -> None:
        self.data[self._index(subscripts)] = coerce_assign(self.ftype, value)

    def fill(self, value: FValue) -> None:
        self.data[...] = coerce_assign(self.ftype, value)

    def copy(self) -> FArray:
        fe = self.fe_holder[0]
        holder = [fe.copy() if fe is not None else None]
        return FArray(self.ftype, self.lower, self.shape,
                      self.data.copy(), holder)

    def reinterpret(self, bounds: list[tuple[int, int]]) -> FArray:
        """View this array's storage with new Fortran bounds.

        Implements the F77 storage-association rule for arrays passed as
        arguments: the callee's declared shape maps onto the caller's
        storage in column-major order.  The view aliases the original
        data (writes are visible to the caller); the new size must not
        exceed the existing storage.
        """
        lower = tuple(lo for lo, _ in bounds)
        shape = tuple(hi - lo + 1 for lo, hi in bounds)
        new_size = 1
        for extent in shape:
            if extent <= 0:
                raise FortranError(
                    f"non-positive extent in reinterpreted bounds {bounds}")
            new_size *= extent
        flat = self.data.reshape(-1, order="F")
        if new_size > flat.shape[0]:
            raise FortranError(
                f"dummy array of {new_size} elements exceeds actual "
                f"argument of {flat.shape[0]}")
        view = flat[:new_size].reshape(shape, order="F")
        # Views share the full/empty state box with their base.
        return FArray(self.ftype, lower, shape, view, self.fe_holder)


def format_value(value: FValue) -> str:
    """Render a value the way list-directed output prints it.

    Deliberately simple and deterministic (not column-padded like real
    Fortran): integers plain, logicals as T/F, reals with repr-style
    shortest form.
    """
    if isinstance(value, (bool, np.bool_)):
        return "T" if value else "F"
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        return repr(value)
    return str(value)
