"""Generator-based interpreter for the F77 subset.

Execution is a Python generator: each statement yields a :class:`Cost`
event carrying its simulated cycle count, and calls into the Force
runtime library (the *external handler*) yield whatever events that
handler produces (lock waits, barrier arrivals …).  A discrete-event
scheduler — or a trivial drain loop for serial programs — drives the
generator.  This is how one "processor" of the simulated multiprocessor
executes Fortran.

Variable storage uses :class:`Cell` objects for scalars and
:class:`~repro.fortran.values.FArray` for arrays, so sharing a variable
between processes is simply binding the same object into two frames —
the exact shared-memory model of the paper's machines.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterator

from repro._util.errors import FortranError
from repro.fortran import ast_nodes as ast
from repro.fortran.intrinsics import call_intrinsic, is_intrinsic
from repro.fortran.parser import Program, ProgramUnit
from repro.fortran.values import (
    FArray,
    FType,
    FValue,
    coerce_assign,
    default_type_for,
    format_value,
)


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Cost:
    """Charge ``cycles`` of simulated time to the executing process.

    ``statements`` is the number of source statements the event
    accounts for: the tree-walker and closure tiers emit one event per
    statement (``statements == 1``), while the source-codegen tier
    batches straight-line runs and vectorized DOALL kernels into
    aggregate events carrying the exact statement count the tree
    walker would have produced.  Clock accounting only reads
    ``cycles``; ``statements`` feeds throughput benchmarks.
    """
    cycles: int
    statements: int = 1


@dataclass(frozen=True, slots=True)
class Halt:
    """A STOP statement: the whole program terminates."""
    message: str | None = None


# ----------------------------------------------------------------------
# storage
# ----------------------------------------------------------------------
class Cell:
    """A mutable scalar variable.

    ``full`` is the HEP-style hardware full/empty access state used by
    the HEP machine model's produce/consume builtins; other machines
    ignore it.
    """

    __slots__ = ("value", "ftype", "full")

    def __init__(self, ftype: FType, value: FValue | None = None) -> None:
        self.ftype = ftype
        self.value = ftype.zero if value is None else value
        self.full = False

    def get(self) -> FValue:
        return self.value

    def set(self, value: FValue) -> None:
        self.value = coerce_assign(self.ftype, value)

    def retype(self, ftype: FType) -> None:
        if ftype is not self.ftype:
            self.ftype = ftype
            self.value = coerce_assign(ftype, self.value) \
                if _numeric(self.value) and ftype in _NUMERIC_TYPES \
                else ftype.zero

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cell({self.ftype.name}, {self.value!r})"


_NUMERIC_TYPES = (FType.INTEGER, FType.REAL, FType.DOUBLE)


def _numeric(value: FValue) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# ----------------------------------------------------------------------
# argument references (Fortran pass-by-reference)
# ----------------------------------------------------------------------
class ArgRef:
    """Base: a reference a callee can read and (maybe) write."""

    def get(self) -> FValue:
        raise NotImplementedError

    def set(self, value: FValue) -> None:
        raise FortranError("cannot assign through this argument")

    @property
    def array(self) -> FArray | None:
        return None


class ValueRef(ArgRef):
    """An expression actual argument: read-only."""

    def __init__(self, value: FValue) -> None:
        self.value = value

    def get(self) -> FValue:
        return self.value


class CellRef(ArgRef):
    """A scalar variable actual argument: aliases the caller's cell."""

    def __init__(self, cell: Cell) -> None:
        self.cell = cell

    def get(self) -> FValue:
        return self.cell.get()

    def set(self, value: FValue) -> None:
        self.cell.set(value)


class ElementRef(ArgRef):
    """An array-element actual argument."""

    def __init__(self, farray: FArray, subscripts: tuple[int, ...]) -> None:
        self.farray = farray
        self.subscripts = subscripts

    def get(self) -> FValue:
        return self.farray.get(self.subscripts)

    def set(self, value: FValue) -> None:
        self.farray.set(self.subscripts, value)


class ArrayRef(ArgRef):
    """A whole-array actual argument: aliases the caller's storage."""

    def __init__(self, farray: FArray) -> None:
        self.farray = farray

    def get(self) -> FValue:
        raise FortranError("whole array used where a scalar is required")

    @property
    def array(self) -> FArray:
        return self.farray


# ----------------------------------------------------------------------
# common blocks
# ----------------------------------------------------------------------
class CommonProvider:
    """Serves storage for COMMON blocks.

    The default implementation gives classic single-address-space
    semantics: one storage sequence per block name.  The machine models
    subclass this to decide, per block and per process, whether storage
    is shared or private (§4.1.2 of the paper).
    """

    def __init__(self) -> None:
        self._blocks: dict[str, list[Cell | FArray]] = {}

    def get_block(self, name: str, layout, frame) -> list[Cell | FArray]:
        """Return the storage sequence for block ``name``.

        ``layout`` is ``[(member-name, FType, bounds|None)]`` in
        declaration order; bounds are resolved (lower, upper) int pairs.
        """
        block = self._blocks.get(name)
        if block is None:
            block = [self._make_slot(ftype, bounds)
                     for (_n, ftype, bounds) in layout]
            self._blocks[name] = block
            return block
        if len(block) != len(layout):
            raise FortranError(
                f"COMMON /{name}/ declared with {len(layout)} members, "
                f"previously {len(block)}")
        return [self._adapt_slot(slot, ftype, bounds, name)
                for slot, (_n, ftype, bounds) in zip(block, layout)]

    @staticmethod
    def _make_slot(ftype: FType, bounds):
        if bounds is None:
            return Cell(ftype)
        return FArray.allocate(ftype, bounds)

    @staticmethod
    def _adapt_slot(slot, ftype: FType, bounds, block_name: str):
        if bounds is None:
            if not isinstance(slot, Cell):
                raise FortranError(
                    f"COMMON /{block_name}/ member shape mismatch")
            return slot
        if not isinstance(slot, FArray):
            raise FortranError(
                f"COMMON /{block_name}/ member shape mismatch")
        return slot.reinterpret(bounds)


# ----------------------------------------------------------------------
# external (runtime library) calls
# ----------------------------------------------------------------------
class ExternalCallHandler:
    """Hook for the Force runtime library.

    ``is_external`` claims CALL targets; ``call`` returns a generator of
    events.  ``is_external_function``/``call_function`` serve functions
    referenced in expressions (must be non-blocking — expressions cannot
    suspend a process mid-evaluation).
    """

    def is_external(self, name: str) -> bool:
        return False

    def call(self, name: str, args: list[ArgRef], frame: "Frame"):
        raise FortranError(f"no external subroutine {name}")
        yield  # pragma: no cover - makes this a generator function

    def is_external_function(self, name: str) -> bool:
        return False

    def call_function(self, name: str, args: list["ArgRef"],
                      frame: "Frame") -> FValue:
        """Evaluate external function ``name``; args are ArgRefs so the
        runtime can identify storage (e.g. Isfull on an async cell)."""
        raise FortranError(f"no external function {name}")


#: Backwards-compatible alias used in package exports.
StatementExecution = Cost


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
class Frame:
    """Activation record for one program-unit invocation."""

    __slots__ = ("unit", "vars", "do_stack", "process", "interpreter",
                 "result_cell", "externals", "slots", "argrefs", "fast",
                 "depth")

    def __init__(self, unit: ProgramUnit) -> None:
        self.unit = unit
        self.vars: dict[str, Cell | FArray] = {}
        # entries: [do_index, terminal_index, var_cell, step, trips_left]
        self.do_stack: list[list] = []
        self.process = None          # set by the simulator
        self.interpreter: Interpreter | None = None
        self.result_cell: Cell | None = None
        self.externals: set[str] = set()
        # compiled-layer bindings (repro.fortran.compile)
        self.slots: list | None = None
        self.argrefs: list | None = None
        self.fast: list | None = None
        self.depth: int = 0

    def lookup(self, name: str):
        return self.vars.get(name)

    def get_or_create_scalar(self, name: str) -> Cell:
        entry = self.vars.get(name)
        if entry is None:
            entry = Cell(default_type_for(name))
            self.vars[name] = entry
        if not isinstance(entry, Cell):
            raise FortranError(f"{name} is an array, not a scalar",
                               unit=self.unit.name)
        return entry


class StopSignal(Exception):
    """Internal: unwinds nested frames on STOP."""

    def __init__(self, message: str | None) -> None:
        self.message = message


# ----------------------------------------------------------------------
# the interpreter
# ----------------------------------------------------------------------
class Interpreter:
    """Executes parsed program units as event generators."""

    def __init__(self, program: Program, *,
                 external: ExternalCallHandler | None = None,
                 commons: CommonProvider | None = None,
                 on_output: Callable[[str, Frame], None] | None = None,
                 cost_scale: int = 1,
                 max_call_depth: int = 64,
                 compiled: bool = True,
                 facts: dict | None = None,
                 codegen: str | None = None) -> None:
        self.program = program
        self.external = external or ExternalCallHandler()
        self.commons = commons or CommonProvider()
        self.output: list[str] = []
        self.on_output = on_output
        self.cost_scale = cost_scale
        self.max_call_depth = max_call_depth
        self.input_data: list[FValue] = []
        #: ``force check --facts`` document, when the caller has one;
        #: the compiled layer uses it to find DOALLs the static race
        #: engine proved race-free (kernel-lowering candidates).
        self.facts = facts
        # Compiled execution layers: on by default, REPRO_NO_JIT=1
        # forces the tree-walker everywhere.  ``codegen`` picks the
        # tier: "source" (repro.fortran.codegen, the default), or
        # "closure" (repro.fortran.compile), or "interp" (tree-walk).
        self.compiled_enabled = compiled and not os.environ.get(
            "REPRO_NO_JIT")
        tier = codegen if codegen is not None \
            else os.environ.get("REPRO_CODEGEN") or "source"
        if tier not in ("source", "closure", "interp"):
            raise FortranError(
                f"unknown codegen tier {tier!r} "
                "(expected source, closure or interp)")
        if not self.compiled_enabled:
            tier = "interp"
        self.codegen_tier = tier
        self._compiled = None
        self._codegen = None

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run_program(self) -> Iterator:
        """Generator executing the PROGRAM unit (serial entry point)."""
        if self.program.main is None:
            raise FortranError("no PROGRAM unit")
        try:
            yield from self.run_unit(self.program.main, [])
        except StopSignal as stop:
            yield Halt(stop.message)

    def run_unit(self, unit: ProgramUnit, args: list[ArgRef],
                 depth: int = 0, process=None) -> Iterator:
        """Generator executing one unit invocation.

        The generator's return value (StopIteration.value) is the
        function result for FUNCTION units, else None.  Units compile
        to closure tables on first use (see
        :mod:`repro.fortran.compile`); units the compiled layer cannot
        handle fall back to the tree-walker, with the reason recorded
        in :attr:`compile_fallbacks`.
        """
        tier = self.codegen_tier
        if tier != "interp" and self.compiled_enabled:
            if tier == "source":
                generated = self._codegen_unit(unit)
                if generated is not None:
                    return generated.run(args, depth, process)
            compiled = self._compiled_unit(unit)
            if compiled is not None:
                return compiled.run(args, depth, process)
        return self._run_unit_tree(unit, args, depth, process)

    def _compiled_unit(self, unit: ProgramUnit):
        if self._compiled is None:
            from repro.fortran.compile import CompiledProgram
            self._compiled = CompiledProgram(self)
        return self._compiled.unit_for(unit)

    def _codegen_unit(self, unit: ProgramUnit):
        if self._codegen is None:
            from repro.fortran.codegen import CodegenProgram
            self._codegen = CodegenProgram(self)
        return self._codegen.unit_for(unit)

    @property
    def compile_fallbacks(self) -> dict[str, str]:
        """Unit name -> reason a faster tier was skipped (empty when
        every executed unit ran on the best enabled tier).

        With the source-codegen tier a unit may fall back twice —
        codegen -> closures -> tree-walker; the recorded reason then
        carries both stages."""
        out: dict[str, str] = {}
        if self._codegen is not None:
            for name, reason in self._codegen.fallbacks.items():
                out[name] = f"codegen: {reason}"
        if self._compiled is not None:
            for name, reason in self._compiled.fallbacks.items():
                prev = out.get(name)
                out[name] = f"{prev}; closures: {reason}" if prev \
                    else reason
        return out

    @property
    def kernel_eligible(self) -> dict[str, list[int]]:
        """Unit name -> labels of compiled DO loops the analysis facts
        proved race-free (array-kernel candidates); empty without a
        facts document or before any unit compiles."""
        out: dict[str, list[int]] = {}
        if self._compiled is not None:
            out.update(self._compiled.kernel_eligible)
        if self._codegen is not None:
            out.update(self._codegen.kernel_eligible)
        return out

    @property
    def codegen_kernelized(self) -> dict[str, list[int]]:
        """Unit name -> labels of DOALLs the source-codegen tier
        actually lowered to numpy slice kernels (a subset of
        :attr:`kernel_eligible`; empty off the source tier)."""
        return {} if self._codegen is None \
            else dict(self._codegen.kernelized)

    def codegen_sources(self) -> dict[str, str]:
        """Unit name -> generated Python source (source tier only;
        units are emitted on demand, so only units that ran — or were
        force-compiled via :func:`repro.fortran.codegen.compile_all`
        — appear)."""
        return {} if self._codegen is None \
            else dict(self._codegen.sources)

    def _run_unit_tree(self, unit: ProgramUnit, args: list[ArgRef],
                       depth: int = 0, process=None) -> Iterator:
        """The original tree-walking executor (fallback + oracle)."""
        if depth > self.max_call_depth:
            raise FortranError(f"call depth exceeds {self.max_call_depth} "
                               f"(runaway recursion?)", unit=unit.name)
        frame = self._make_frame(unit, args, process)
        yield from self._exec_frame(frame, depth)
        if unit.kind == "function":
            assert frame.result_cell is not None
            return frame.result_cell.get()
        return None

    # ------------------------------------------------------------------
    # frame setup: declarations, commons, parameters, data
    # ------------------------------------------------------------------
    def _make_frame(self, unit: ProgramUnit, args: list[ArgRef],
                    process) -> Frame:
        frame = Frame(unit)
        frame.interpreter = self
        frame.process = process
        if len(args) != len(unit.params):
            raise FortranError(
                f"{unit.name} called with {len(args)} args, expects "
                f"{len(unit.params)}")

        # Collect declared types and bounds.
        decl_type: dict[str, FType] = {}
        decl_bounds: dict[str, list] = {}
        order: list[str] = []
        commons: list[ast.CommonDecl] = []
        parameters: list[ast.ParameterDecl] = []
        data_decls: list[ast.DataDecl] = []
        for stmt in unit.statements:
            if isinstance(stmt, ast.Declaration):
                for name, bounds in stmt.entities:
                    decl_type[name] = stmt.ftype
                    if bounds is not None:
                        decl_bounds[name] = bounds
                    if name not in order:
                        order.append(name)
            elif isinstance(stmt, ast.DimensionDecl):
                for name, bounds in stmt.entities:
                    if bounds is None:
                        raise FortranError("DIMENSION entity lacks bounds",
                                           line=stmt.line, unit=unit.name)
                    decl_bounds[name] = bounds
                    if name not in order:
                        order.append(name)
            elif isinstance(stmt, ast.CommonDecl):
                commons.append(stmt)
                for name, bounds in stmt.entities:
                    if bounds is not None:
                        decl_bounds[name] = bounds
                    if name not in order:
                        order.append(name)
            elif isinstance(stmt, ast.ParameterDecl):
                parameters.append(stmt)
            elif isinstance(stmt, ast.DataDecl):
                data_decls.append(stmt)
            elif isinstance(stmt, ast.ExternalDecl):
                frame.externals.update(stmt.names)

        def type_of(name: str) -> FType:
            return decl_type.get(name, default_type_for(name))

        # PARAMETER constants (may chain, so evaluate in order).
        for pdecl in parameters:
            for name, expr in pdecl.assignments:
                cell = Cell(type_of(name))
                cell.set(self._eval(expr, frame))
                frame.vars[name] = cell

        common_members = {name for cdecl in commons
                          for name, _ in cdecl.entities}

        # Bind scalar dummy arguments first: adjustable array bounds
        # (``V(N)`` with dummy N) must see them.
        array_params: list[tuple[str, ArgRef]] = []
        for pname, ref in zip(unit.params, args):
            if ref.array is not None:
                array_params.append((pname, ref))
                continue
            ftype = type_of(pname)
            if isinstance(ref, CellRef):
                # Alias the caller's cell; its type is authoritative.
                frame.vars[pname] = ref.cell
            else:
                cell = Cell(ftype)
                value = ref.get()
                cell.set(value if _compatible(ftype, value)
                         else coerce_assign(ftype, value))
                frame.vars[pname] = cell
                # ElementRef gets copy-out at return; arrange via wrapper.
                if isinstance(ref, ElementRef):
                    frame.vars["%COPYOUT%" + pname] = _CopyOut(cell, ref)

        # COMMON blocks (array bounds may reference scalar dummies).
        for cdecl in commons:
            layout = []
            for name, bounds in cdecl.entities:
                resolved = self._resolve_bounds(decl_bounds[name], frame) \
                    if name in decl_bounds else None
                layout.append((name, type_of(name), resolved))
            storage = self.commons.get_block(cdecl.block, layout, frame)
            for (name, _b), slot in zip(cdecl.entities, storage):
                frame.vars[name] = slot

        # Array dummy arguments (bounds may reference scalars/commons).
        for pname, ref in array_params:
            farray = ref.array
            if pname in decl_bounds:
                farray = farray.reinterpret(
                    self._resolve_bounds(decl_bounds[pname], frame))
            frame.vars[pname] = farray

        # Materialize remaining declared names.
        for name in order:
            if name in frame.vars or name in common_members:
                continue
            if name in decl_bounds:
                bounds = self._resolve_bounds(decl_bounds[name], frame)
                frame.vars[name] = FArray.allocate(type_of(name), bounds)
            else:
                frame.vars[name] = Cell(type_of(name))

        # FUNCTION result slot.
        if unit.kind == "function":
            rtype = unit.result_type or type_of(unit.name)
            existing = frame.vars.get(unit.name)
            if isinstance(existing, Cell):
                frame.result_cell = existing
            else:
                frame.result_cell = Cell(rtype)
                frame.vars[unit.name] = frame.result_cell

        # DATA initialisation.
        for ddecl in data_decls:
            for name, exprs in ddecl.items:
                values = [self._eval(e, frame) for e in exprs]
                target = frame.vars.get(name)
                if target is None:
                    target = frame.get_or_create_scalar(name)
                if isinstance(target, Cell):
                    if len(values) != 1:
                        raise FortranError(
                            f"DATA for scalar {name} needs one value")
                    target.set(values[0])
                else:
                    if len(values) == 1:
                        target.fill(values[0])
                    elif len(values) == target.size:
                        flat = target.data.reshape(-1, order="F")
                        for i, v in enumerate(values):
                            flat[i] = coerce_assign(target.ftype, v)
                    else:
                        raise FortranError(
                            f"DATA for {name}: {len(values)} values for "
                            f"{target.size} elements")
        return frame

    def _resolve_bounds(self, bounds, frame) -> list[tuple[int, int]]:
        resolved = []
        for lo_expr, hi_expr in bounds:
            lo = 1 if lo_expr is None else int(self._eval(lo_expr, frame))
            hi = int(self._eval(hi_expr, frame))
            resolved.append((lo, hi))
        return resolved

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------
    def _exec_frame(self, frame: Frame, depth: int) -> Iterator:
        unit = frame.unit
        statements = unit.statements
        pc = 0
        count = len(statements)
        via_jump = False
        while 0 <= pc < count:
            stmt = statements[pc]
            new_pc = None
            if not isinstance(stmt, (ast.Declaration, ast.DimensionDecl,
                                     ast.CommonDecl, ast.ParameterDecl,
                                     ast.DataDecl, ast.ExternalDecl,
                                     ast.FormatStmt)):
                yield Cost(stmt.weight * self.cost_scale)
                new_pc = yield from self._exec_stmt(stmt, frame, depth,
                                                    via_jump)
            if new_pc is _RETURN:
                return
            via_jump = new_pc is not None
            pc = new_pc if new_pc is not None else pc + 1
            # DO terminal handling: statement at pc-1 just completed.
            if new_pc is None:
                looped = self._advance_do(frame, pc - 1, pc)
                if looped != pc:
                    via_jump = True
                    pc = looped
        raise FortranError("fell off the end of unit", unit=unit.name)

    def _advance_do(self, frame: Frame, executed: int, pc: int) -> int:
        while frame.do_stack and frame.do_stack[-1][1] == executed:
            entry = frame.do_stack[-1]
            entry[4] -= 1
            var_cell: Cell = entry[2]
            # F77: the DO variable is incremented on every pass,
            # including the one that exhausts the trip count.
            var_cell.set(var_cell.get() + entry[3])
            if entry[4] > 0:
                return entry[0] + 1
            frame.do_stack.pop()
        return pc

    def _exec_stmt(self, stmt: ast.Stmt, frame: Frame, depth: int,
                   via_jump: bool = False):
        """Execute one statement; returns new pc, _RETURN, or None.

        Implemented as a generator so CALLs can suspend.  ``via_jump``
        says whether control arrived here by an explicit jump — an
        ELSE IF / ELSE reached *sequentially* means the previous branch
        just completed, so control skips to END IF; reached *by jump*
        (the previous arm's condition failed) it enters this arm.
        """
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.target, self._eval(stmt.expr, frame), frame)
            return None
        if isinstance(stmt, ast.Continue):
            return None
        if isinstance(stmt, ast.Goto):
            return stmt.target
        if isinstance(stmt, ast.ComputedGoto):
            selector = int(self._eval(stmt.selector, frame))
            if 1 <= selector <= len(stmt.targets):
                return stmt.targets[selector - 1]
            return None
        if isinstance(stmt, ast.LogicalIf):
            if _truth(self._eval(stmt.cond, frame)):
                return (yield from self._exec_stmt(stmt.body, frame, depth))
            return None
        if isinstance(stmt, ast.IfThen):
            if _truth(self._eval(stmt.cond, frame)):
                return None
            return stmt.false_target
        if isinstance(stmt, ast.ElseIf):
            if not via_jump:
                return stmt.end_target
            if _truth(self._eval(stmt.cond, frame)):
                return None
            return stmt.false_target
        if isinstance(stmt, ast.Else):
            if not via_jump:
                return stmt.end_target
            return None
        if isinstance(stmt, ast.EndIf):
            return None
        if isinstance(stmt, ast.Do):
            return self._start_do(stmt, frame)
        if isinstance(stmt, ast.EndDo):
            return None
        if isinstance(stmt, ast.Call):
            yield from self._exec_call(stmt, frame, depth)
            return None
        if isinstance(stmt, ast.Return):
            self._run_copy_outs(frame)
            return _RETURN
        if isinstance(stmt, ast.EndUnit):
            self._run_copy_outs(frame)
            return _RETURN
        if isinstance(stmt, ast.Stop):
            raise StopSignal(stmt.message)
        if isinstance(stmt, ast.Write):
            values = [self._eval(e, frame) for e in stmt.items]
            if stmt.fmt_label is not None:
                lines = self._format_write(stmt, values, frame)
            else:
                lines = [" ".join(format_value(v) for v in values)]
            for line in lines:
                self.output.append(line)
                if self.on_output is not None:
                    self.on_output(line, frame)
            return None
        if isinstance(stmt, ast.Read):
            for target in stmt.targets:
                self._assign(target, self._next_input(frame), frame)
            return None
        raise FortranError(
            f"statement {type(stmt).__name__} not executable",
            line=stmt.line, unit=frame.unit.name)
        yield  # pragma: no cover

    def _start_do(self, stmt: ast.Do, frame: Frame) -> int | None:
        first = self._eval(stmt.first, frame)
        last = self._eval(stmt.last, frame)
        step = self._eval(stmt.step, frame) if stmt.step is not None else 1
        if step == 0:
            raise FortranError("DO step of zero", line=stmt.line,
                               unit=frame.unit.name)
        var_cell = frame.get_or_create_scalar(stmt.var)
        var_cell.set(first)
        trips = int((last - first + step) // step)
        if isinstance(first, float) or isinstance(last, float) or \
                isinstance(step, float):
            trips = int((last - first + step) / step)
        if trips <= 0:
            return stmt.terminal + 1
        # Drop stale state from a previous abandoned entry of this loop.
        frame.do_stack = [e for e in frame.do_stack if e[0] != stmt.index]
        frame.do_stack.append([stmt.index, stmt.terminal, var_cell,
                               step, trips])
        return None

    def _exec_call(self, stmt: ast.Call, frame: Frame, depth: int):
        name = stmt.name
        if self.external.is_external(name):
            refs = [self._make_argref(a, frame) for a in stmt.args]
            yield from self.external.call(name, refs, frame)
            return
        unit = self.program.units.get(name)
        if unit is None or unit.kind != "subroutine":
            raise FortranError(f"no subroutine named {name}",
                               line=stmt.line, unit=frame.unit.name)
        refs = [self._make_argref(a, frame) for a in stmt.args]
        yield from self.run_unit(unit, refs, depth + 1,
                                 process=frame.process)

    def _run_copy_outs(self, frame: Frame) -> None:
        for key, value in frame.vars.items():
            if key.startswith("%COPYOUT%"):
                value.flush()

    def _make_argref(self, expr: ast.Expr, frame: Frame) -> ArgRef:
        if isinstance(expr, ast.Var):
            entry = frame.lookup(expr.name)
            if isinstance(entry, FArray):
                return ArrayRef(entry)
            if entry is None and (
                    expr.name in self.program.units or
                    expr.name in frame.externals or
                    self.external.is_external(expr.name)):
                return ValueRef(expr.name)   # procedure-name argument
            return CellRef(frame.get_or_create_scalar(expr.name))
        if isinstance(expr, ast.Apply):
            entry = frame.lookup(expr.name)
            if isinstance(entry, FArray):
                subs = tuple(int(self._eval(a, frame)) for a in expr.args)
                return ElementRef(entry, subs)
        return ValueRef(self._eval(expr, frame))

    # ------------------------------------------------------------------
    # assignment & evaluation
    # ------------------------------------------------------------------
    def _assign(self, target, value: FValue, frame: Frame) -> None:
        if isinstance(target, ast.Var):
            entry = frame.lookup(target.name)
            if isinstance(entry, FArray):
                raise FortranError(f"cannot assign scalar to whole array "
                                   f"{target.name}", unit=frame.unit.name)
            frame.get_or_create_scalar(target.name).set(value)
            return
        if isinstance(target, ast.Apply):
            entry = frame.lookup(target.name)
            if not isinstance(entry, FArray):
                raise FortranError(f"{target.name} is not an array",
                                   unit=frame.unit.name)
            subs = tuple(int(self._eval(a, frame)) for a in target.args)
            entry.set(subs, value)
            return
        raise FortranError("bad assignment target")

    def _eval(self, expr: ast.Expr, frame: Frame) -> FValue:
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Str):
            return expr.value
        if isinstance(expr, ast.LogConst):
            return expr.value
        if isinstance(expr, ast.Var):
            entry = frame.lookup(expr.name)
            if isinstance(entry, FArray):
                raise FortranError(f"whole array {expr.name} in scalar "
                                   f"expression", unit=frame.unit.name)
            if entry is None:
                entry = frame.get_or_create_scalar(expr.name)
            return entry.get()
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(expr.operand, frame)
            if expr.op == "-":
                _require_numeric(operand)
                return -operand
            if expr.op == "+":
                _require_numeric(operand)
                return operand
            if expr.op == ".NOT.":
                return not _truth(operand)
            raise FortranError(f"unknown unary {expr.op}")
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, frame)
        if isinstance(expr, ast.Apply):
            return self._eval_apply(expr, frame)
        raise FortranError(f"cannot evaluate {expr!r}")

    def _eval_binop(self, expr: ast.BinOp, frame: Frame) -> FValue:
        op = expr.op
        if op == ".AND.":
            return _truth(self._eval(expr.left, frame)) and \
                _truth(self._eval(expr.right, frame))
        if op == ".OR.":
            return _truth(self._eval(expr.left, frame)) or \
                _truth(self._eval(expr.right, frame))
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        if op == "//":
            if not isinstance(left, str) or not isinstance(right, str):
                raise FortranError("// requires CHARACTER operands")
            return left + right
        if op in _REL_MAP:
            if isinstance(left, str) != isinstance(right, str):
                raise FortranError("cannot compare CHARACTER with numeric")
            return _REL_MAP[op](left, right)
        _require_numeric(left)
        _require_numeric(right)
        both_int = isinstance(left, int) and isinstance(right, int)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if both_int:
                if right == 0:
                    raise FortranError("integer division by zero")
                quotient = abs(left) // abs(right)
                return quotient if (left < 0) == (right < 0) else -quotient
            if right == 0:
                raise FortranError("division by zero")
            return left / right
        if op == "**":
            if both_int:
                if right < 0:
                    return 1 if left == 1 else (-1) ** right if left == -1 \
                        else 0
                return left ** right
            return float(left) ** float(right)
        raise FortranError(f"unknown operator {op}")

    def _eval_apply(self, expr: ast.Apply, frame: Frame) -> FValue:
        name = expr.name
        entry = frame.lookup(name)
        if isinstance(entry, FArray):
            subs = tuple(int(self._eval(a, frame)) for a in expr.args)
            return entry.get(subs)
        if self.external.is_external_function(name):
            refs = [self._make_argref(a, frame) for a in expr.args]
            return self.external.call_function(name, refs, frame)
        if is_intrinsic(name):
            args = [self._eval(a, frame) for a in expr.args]
            return call_intrinsic(name, args)
        unit = self.program.units.get(name)
        if unit is not None and unit.kind == "function":
            return self._call_user_function(unit, expr.args, frame)
        raise FortranError(f"{name} is not an array, intrinsic or function",
                           unit=frame.unit.name)

    def _format_write(self, stmt: ast.Write, values, frame: Frame):
        """Render a FORMAT-directed WRITE into output lines."""
        from repro.fortran.formats import apply_format, parse_format
        if stmt.compiled_format is None:
            unit = frame.unit
            index = unit.label_index.get(stmt.fmt_label)
            if index is None:
                raise FortranError(f"no FORMAT labelled {stmt.fmt_label}",
                                   line=stmt.line, unit=unit.name)
            fmt_stmt = unit.statements[index]
            if not isinstance(fmt_stmt, ast.FormatStmt):
                raise FortranError(
                    f"label {stmt.fmt_label} is not a FORMAT statement",
                    line=stmt.line, unit=unit.name)
            text = fmt_stmt.text.strip()
            open_paren = text.find("(")
            if not text.upper().startswith("FORMAT") or open_paren < 0 \
                    or not text.endswith(")"):
                raise FortranError(f"malformed FORMAT: {text!r}",
                                   line=fmt_stmt.line, unit=unit.name)
            stmt.compiled_format = parse_format(text[open_paren + 1:-1])
        return apply_format(stmt.compiled_format, values)

    def _next_input(self, frame: Frame) -> FValue:
        if not self.input_data:
            raise FortranError("READ past end of input",
                               unit=frame.unit.name)
        return self.input_data.pop(0)

    def set_input(self, data) -> None:
        """Provide list-directed input: a list of scalars, or a string
        tokenised on whitespace/commas with numeric conversion."""
        if isinstance(data, str):
            tokens = data.replace(",", " ").split()
            values: list[FValue] = []
            for token in tokens:
                upper = token.upper()
                if upper in (".TRUE.", "T"):
                    values.append(True)
                elif upper in (".FALSE.", "F"):
                    values.append(False)
                else:
                    try:
                        values.append(int(token))
                    except ValueError:
                        try:
                            values.append(float(upper.replace("D", "E")))
                        except ValueError:
                            values.append(token)
            self.input_data = values
        else:
            self.input_data = list(data)

    def _call_user_function(self, unit: ProgramUnit, arg_exprs,
                            frame: Frame) -> FValue:
        """Run a user FUNCTION synchronously (no blocking allowed)."""
        refs = [self._make_argref(a, frame) for a in arg_exprs]
        gen = self.run_unit(unit, refs, depth=1, process=frame.process)
        result = None
        while True:
            try:
                event = next(gen)
            except StopIteration as stop:
                result = stop.value
                break
            if not isinstance(event, Cost):
                raise FortranError(
                    f"function {unit.name} attempted a blocking operation "
                    "(not allowed inside an expression)")
        return result


_RETURN = object()


class _CopyOut:
    """Copy-out record for array-element actual arguments."""

    __slots__ = ("cell", "ref")

    def __init__(self, cell: Cell, ref: ElementRef) -> None:
        self.cell = cell
        self.ref = ref

    def flush(self) -> None:
        self.ref.set(self.cell.get())


_REL_MAP = {
    ".EQ.": lambda a, b: a == b,
    ".NE.": lambda a, b: a != b,
    ".LT.": lambda a, b: a < b,
    ".LE.": lambda a, b: a <= b,
    ".GT.": lambda a, b: a > b,
    ".GE.": lambda a, b: a >= b,
}


def _truth(value: FValue) -> bool:
    if isinstance(value, bool):
        return value
    raise FortranError(f"expected LOGICAL, got {value!r}")


def _require_numeric(value: FValue) -> None:
    if isinstance(value, bool) or isinstance(value, str):
        raise FortranError(f"expected numeric operand, got {value!r}")


def _compatible(ftype: FType, value: FValue) -> bool:
    try:
        coerce_assign(ftype, value)
        return True
    except FortranError:
        return False


def drain(gen: Iterator, *, max_events: int = 50_000_000):
    """Run a serial program generator to completion.

    Returns (total_cost, halt) where halt is the Halt event if STOP was
    executed.  Raises on runaway programs.
    """
    total = 0
    halt = None
    for i, event in enumerate(gen):
        if isinstance(event, Cost):
            total += event.cycles
        elif isinstance(event, Halt):
            halt = event
        else:
            raise FortranError(f"unexpected event {event!r} in serial run")
        if i >= max_events:
            raise FortranError("program exceeded the serial event limit")
    return total, halt
