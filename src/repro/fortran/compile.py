"""Compile-to-closures execution layer for the F77 interpreter.

One pass over each program unit's AST emits pre-bound Python closures:
statements become a flat table of ``(kind, run, cost)`` thunks with
precomputed jump targets for GOTO/IF/DO, and expressions compile to
closures with slot-resolved variable access — locals and COMMON members
resolve to a frame-slot index at compile time, and the slot is bound to
the invocation's actual :class:`~repro.fortran.interp.Cell` /
:class:`~repro.fortran.values.FArray` object once per call.  Frame
setup still goes through :meth:`Interpreter._make_frame`, so COMMON /
EQUIVALENCE aliasing, dummy-argument binding and DATA initialisation
are byte-identical to the tree-walker.

The compiled unit yields exactly the same event stream as the
tree-walker — one :class:`Cost` per executable statement (reused frozen
objects, same cycle counts) and the same external-handler generators —
so simulated schedules, stats and outputs are bit-identical.  The
tree-walking interpreter remains the fallback (``--no-jit`` /
``Interpreter(compiled=False)``) and the differential-testing oracle.

A unit that uses a construct this layer cannot prove equivalent raises
:class:`CompileUnsupported` at compile time; the interpreter records
the reason in ``compile_fallbacks`` and tree-walks that unit instead.
"""

from __future__ import annotations

from repro._util.errors import FortranError
from repro.fortran import ast_nodes as ast
from repro.fortran.formats import apply_format, parse_format
from repro.fortran.intrinsics import call_intrinsic, is_intrinsic
from repro.fortran.values import (
    FArray,
    FType,
    default_type_for,
    format_value,
)

_INT = FType.INTEGER
_REAL = FType.REAL
_DOUBLE = FType.DOUBLE


class CompileUnsupported(Exception):
    """The unit uses a construct the compiled layer does not handle."""


# statement-table kinds
_K_SKIP = 0     # declaration-like: no cost, no execution
_K_RUN = 1      # run(frame) -> None | int pc | _RETURN | event generator
_K_VJ = 2       # run(frame, via_jump) -> same (ELSE IF / ELSE)

# slot kinds
_CELL = "cell"        # provably a Cell for the whole invocation
_ARRAY = "array"      # provably an FArray (declared bounds)
_MAYBE = "maybe"      # dummy argument: Cell or FArray per call site
_DYNAMIC = "dynamic"  # procedure-named: replicate dict semantics exactly

_SKIP_CLASSES = (ast.Declaration, ast.DimensionDecl, ast.CommonDecl,
                 ast.ParameterDecl, ast.DataDecl, ast.ExternalDecl,
                 ast.FormatStmt)


def compile_all(interp) -> dict[str, str]:
    """Compile every unit of ``interp``'s program.

    Returns the fallback map (unit name -> reason); empty means the
    whole program runs on the compiled layer.
    """
    for unit in interp.program.units.values():
        interp._compiled_unit(unit)
    return interp.compile_fallbacks


def kernel_eligible_doalls(facts) -> dict[str, set[int]]:
    """Routine name -> DOALL labels the analyzer proved race-free.

    ``facts`` is a ``force check --facts`` document (see
    :mod:`repro.analysis.facts`).  A DOALL whose body the race engine
    could not fault keeps its numeric label through translation (the
    sed expansion emits ``DO <label> I = ...``), so the compiled layer
    can find the exact loop and treat it as an array-kernel candidate:
    its iterations touch disjoint storage, so a future lowering may run
    them without per-iteration synchronization.  Loops absent here
    must stay on the conservative path.
    """
    out: dict[str, set[int]] = {}
    if not facts:
        return out
    for entry in facts.get("files", []):
        for doall in entry.get("doalls", []):
            if not doall.get("race_free"):
                continue
            try:
                label = int(doall.get("label") or 0)
            except (TypeError, ValueError):
                continue
            if label > 0:
                out.setdefault(
                    str(doall["routine"]).upper(), set()).add(label)
    return out


class CompiledProgram:
    """Per-interpreter cache of compiled units (lazy, with fallback)."""

    def __init__(self, interp) -> None:
        self.interp = interp
        self._units: dict[str, "CompiledUnit | None"] = {}
        #: unit name -> reason the tree-walker is used instead
        self.fallbacks: dict[str, str] = {}
        #: routine -> race-free DOALL labels from the analysis facts
        self.eligible = kernel_eligible_doalls(
            getattr(interp, "facts", None))
        #: unit name -> labels of its kernel-eligible compiled loops
        self.kernel_eligible: dict[str, list[int]] = {}

    def unit_for(self, unit) -> "CompiledUnit | None":
        name = unit.name
        try:
            return self._units[name]
        except KeyError:
            pass
        try:
            compiled = CompiledUnit(unit, self.interp)
        except CompileUnsupported as exc:
            self.fallbacks[name] = str(exc)
            compiled = None
        self._units[name] = compiled
        if compiled is not None:
            proven = self.eligible.get(name.upper())
            if proven:
                labels = sorted(
                    stmt.term_label for stmt in unit.statements
                    if isinstance(stmt, ast.Do)
                    and stmt.term_label in proven)
                if labels:
                    self.kernel_eligible[name] = labels
        return compiled


class CompiledUnit:
    """One program unit lowered to a flat closure table."""

    def __init__(self, unit, interp) -> None:
        from repro.fortran.interp import Cost
        self.unit = unit
        self.interp = interp
        self.program = interp.program

        # --- static name classification -------------------------------
        self._params = set(unit.params)
        self._bounds_names: set[str] = set()
        self._externals: set[str] = set()
        for stmt in unit.statements:
            if isinstance(stmt, (ast.Declaration, ast.DimensionDecl,
                                 ast.CommonDecl)):
                for name, bounds in stmt.entities:
                    if bounds is not None:
                        self._bounds_names.add(name)
            elif isinstance(stmt, ast.ExternalDecl):
                self._externals.update(stmt.names)

        # --- slot table (filled on demand while compiling) ------------
        self.slot_index: dict[str, int] = {}
        self.slot_names: list[str] = []
        self.slot_kinds: list[str] = []

        # --- statement table ------------------------------------------
        scale = interp.cost_scale
        table: list[tuple] = []
        for stmt in unit.statements:
            if isinstance(stmt, _SKIP_CLASSES):
                table.append((_K_SKIP, None, None))
            else:
                kind, run = self._stmt(stmt)
                table.append((kind, run, Cost(stmt.weight * scale)))
        self.table = table
        self.count = len(table)

        is_terminal = [False] * self.count
        for stmt in unit.statements:
            if isinstance(stmt, ast.Do) and 0 <= stmt.terminal < self.count:
                is_terminal[stmt.terminal] = True
        self.is_terminal = is_terminal

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, args, depth, process):
        """Generator executing one invocation (same contract as the
        tree-walker's ``run_unit``: StopIteration.value carries the
        FUNCTION result)."""
        interp = self.interp
        if depth > interp.max_call_depth:
            raise FortranError(
                f"call depth exceeds {interp.max_call_depth} "
                f"(runaway recursion?)", unit=self.unit.name)
        frame = interp._make_frame(self.unit, args, process)
        frame.depth = depth
        self._bind(frame)
        yield from self._execute(frame)
        if self.unit.kind == "function":
            assert frame.result_cell is not None
            return frame.result_cell.get()
        return None

    def _bind(self, frame) -> None:
        """Resolve each slot to this invocation's storage object.

        For 1-D numeric arrays we also capture a *fast view* —
        ``(ndarray, lower-bound, extent, is-integer)`` — so the hot
        element-access closures can index the buffer directly instead
        of going through :meth:`FArray.get`/``set`` tuple machinery.
        The slow path remains the semantic reference; fast views only
        cover cases where both agree exactly.
        """
        variables = frame.vars
        slots = []
        argrefs = []
        fast = []
        from repro.fortran.interp import ArrayRef, Cell, CellRef
        for name in self.slot_names:
            entry = variables.get(name)
            if entry is None:
                entry = Cell(default_type_for(name))
                variables[name] = entry
            slots.append(entry)
            if entry.__class__ is FArray:
                argrefs.append(ArrayRef(entry))
                data = entry.data
                if len(entry.shape) == 1 and data.dtype.kind in "if":
                    fast.append((data, entry.lower[0], entry.shape[0],
                                 data.dtype.kind == "i"))
                else:
                    fast.append(None)
            else:
                argrefs.append(CellRef(entry))
                fast.append(None)
        frame.slots = slots
        frame.argrefs = argrefs
        frame.fast = fast

    def _execute(self, frame):
        from repro.fortran.interp import _RETURN
        table = self.table
        count = self.count
        is_terminal = self.is_terminal
        do_stack = frame.do_stack
        pc = 0
        via_jump = False
        while 0 <= pc < count:
            kind, run, cost = table[pc]
            if kind:
                yield cost
                new = run(frame) if kind == _K_RUN else run(frame, via_jump)
                if new is not None:
                    if new.__class__ is int:
                        pc = new
                        via_jump = True
                        continue
                    if new is _RETURN:
                        return
                    # an event generator from a CALL
                    yield from new
            via_jump = False
            executed = pc
            pc += 1
            # DO terminal handling: statement at pc-1 just completed.
            if is_terminal[executed] and do_stack:
                while do_stack and do_stack[-1][1] == executed:
                    entry = do_stack[-1]
                    entry[4] -= 1
                    cell = entry[2]
                    # F77: the DO variable is incremented on every
                    # pass, including the one exhausting the count.
                    value = cell.value + entry[3]
                    if value.__class__ is int and cell.ftype is _INT:
                        cell.value = value
                    else:
                        cell.set(value)
                    if entry[4] > 0:
                        pc = entry[0] + 1
                        via_jump = True
                        break
                    do_stack.pop()
        raise FortranError("fell off the end of unit", unit=self.unit.name)

    # ------------------------------------------------------------------
    # name classification / slots
    # ------------------------------------------------------------------
    def _kind(self, name: str) -> str:
        if name in self._params:
            return _MAYBE
        if name in self._bounds_names:
            return _ARRAY
        handler = self.interp.external
        if name in self.program.units or name in self._externals \
                or handler.is_external(name) \
                or handler.is_external_function(name):
            return _DYNAMIC
        return _CELL

    def _slot(self, name: str) -> int:
        index = self.slot_index.get(name)
        if index is None:
            index = len(self.slot_names)
            self.slot_index[name] = index
            self.slot_names.append(name)
            self.slot_kinds.append(self._kind(name))
        return index

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _stmt(self, stmt) -> tuple[int, "callable"]:
        cls = stmt.__class__
        method = _STMT_DISPATCH.get(cls)
        if method is None:
            raise CompileUnsupported(
                f"statement {cls.__name__} not supported")
        return method(self, stmt)

    def _st_assign(self, stmt):
        value = self._expr(stmt.expr)
        target = stmt.target
        uname = self.unit.name
        if target.__class__ is ast.Var:
            name = target.name
            kind = self._kind(name)
            if kind is _CELL:
                i = self._slot(name)

                def run(f, _i=i, _v=value):
                    cell = f.slots[_i]
                    v = _v(f)
                    cls = v.__class__
                    ftype = cell.ftype
                    if cls is float:
                        if ftype is _REAL or ftype is _DOUBLE:
                            cell.value = v
                            return
                        if ftype is _INT:
                            cell.value = int(v)
                            return
                    elif cls is int:
                        if ftype is _INT:
                            cell.value = v
                            return
                        if ftype is _REAL or ftype is _DOUBLE:
                            cell.value = float(v)
                            return
                    cell.set(v)
                return _K_RUN, run
            if kind is _ARRAY:
                def run(f, _v=value, _n=name, _u=uname):
                    _v(f)
                    raise FortranError(
                        f"cannot assign scalar to whole array {_n}",
                        unit=_u)
                return _K_RUN, run
            if kind is _MAYBE:
                i = self._slot(name)

                def run(f, _i=i, _v=value, _n=name, _u=uname):
                    v = _v(f)
                    entry = f.slots[_i]
                    if entry.__class__ is FArray:
                        raise FortranError(
                            f"cannot assign scalar to whole array {_n}",
                            unit=_u)
                    entry.set(v)
                return _K_RUN, run

            def run(f, _v=value, _n=name, _u=uname):     # _DYNAMIC
                v = _v(f)
                entry = f.vars.get(_n)
                if entry is not None and entry.__class__ is FArray:
                    raise FortranError(
                        f"cannot assign scalar to whole array {_n}",
                        unit=_u)
                f.get_or_create_scalar(_n).set(v)
            return _K_RUN, run
        if target.__class__ is ast.Apply:
            name = target.name
            kind = self._kind(name)
            subs = tuple(self._expr(a) for a in target.args)
            if kind is _ARRAY:
                i = self._slot(name)
                if len(subs) == 1:
                    s0 = subs[0]

                    def run(f, _i=i, _v=value, _s=s0):
                        v = _v(f)
                        sub = _s(f)
                        if sub.__class__ is not int:
                            sub = int(sub)
                        fast = f.fast[_i]
                        if fast is not None:
                            data, lb, n, is_int = fast
                            offset = sub - lb
                            if 0 <= offset < n:
                                if is_int:
                                    if v.__class__ is int:
                                        data[offset] = v
                                        return
                                elif v.__class__ is float \
                                        or v.__class__ is int:
                                    data[offset] = v
                                    return
                        f.slots[_i].set((sub,), v)
                    return _K_RUN, run

                def run(f, _i=i, _v=value, _s=subs):
                    v = _v(f)
                    f.slots[_i].set(tuple(int(c(f)) for c in _s), v)
                return _K_RUN, run
            if kind is _MAYBE:
                i = self._slot(name)

                def run(f, _i=i, _v=value, _s=subs, _n=name, _u=uname):
                    v = _v(f)
                    entry = f.slots[_i]
                    if entry.__class__ is not FArray:
                        raise FortranError(f"{_n} is not an array",
                                           unit=_u)
                    entry.set(tuple(int(c(f)) for c in _s), v)
                return _K_RUN, run

            def run(f, _v=value, _s=subs, _n=name, _u=uname):
                # _CELL / _DYNAMIC: replicate the interpreter's lookup
                v = _v(f)
                entry = f.vars.get(_n)
                if entry is None or entry.__class__ is not FArray:
                    raise FortranError(f"{_n} is not an array", unit=_u)
                entry.set(tuple(int(c(f)) for c in _s), v)
            return _K_RUN, run
        raise CompileUnsupported("bad assignment target")

    def _st_continue(self, stmt):
        return _K_RUN, _noop

    def _st_goto(self, stmt):
        def run(f, _t=stmt.target):
            return _t
        return _K_RUN, run

    def _st_computed_goto(self, stmt):
        selector = self._expr(stmt.selector)
        targets = tuple(stmt.targets)

        def run(f, _s=selector, _t=targets):
            value = int(_s(f))
            if 1 <= value <= len(_t):
                return _t[value - 1]
            return None
        return _K_RUN, run

    def _st_logical_if(self, stmt):
        cond = self._expr(stmt.cond)
        bkind, body = self._stmt(stmt.body)
        if bkind != _K_RUN:
            raise CompileUnsupported("IF body needs via-jump semantics")

        def run(f, _c=cond, _b=body):
            v = _c(f)
            if v is True:
                return _b(f)
            if v is False:
                return None
            raise FortranError(f"expected LOGICAL, got {v!r}")
        return _K_RUN, run

    def _st_if_then(self, stmt):
        cond = self._expr(stmt.cond)

        def run(f, _c=cond, _ft=stmt.false_target):
            v = _c(f)
            if v is True:
                return None
            if v is False:
                return _ft
            raise FortranError(f"expected LOGICAL, got {v!r}")
        return _K_RUN, run

    def _st_else_if(self, stmt):
        cond = self._expr(stmt.cond)

        def run(f, via_jump, _c=cond, _ft=stmt.false_target,
                _et=stmt.end_target):
            if not via_jump:
                return _et
            v = _c(f)
            if v is True:
                return None
            if v is False:
                return _ft
            raise FortranError(f"expected LOGICAL, got {v!r}")
        return _K_VJ, run

    def _st_else(self, stmt):
        def run(f, via_jump, _et=stmt.end_target):
            return None if via_jump else _et
        return _K_VJ, run

    def _st_end_if(self, stmt):
        return _K_RUN, _noop

    def _st_do(self, stmt):
        first = self._expr(stmt.first)
        last = self._expr(stmt.last)
        step = self._expr(stmt.step) if stmt.step is not None else None
        uname = self.unit.name
        name = stmt.var
        kind = self._kind(name)
        if kind is _CELL:
            i = self._slot(name)

            def var_cell(f, _i=i):
                return f.slots[_i]
        elif kind is _DYNAMIC:
            def var_cell(f, _n=name):
                return f.get_or_create_scalar(_n)
        else:
            i = self._slot(name)

            def var_cell(f, _i=i, _n=name, _u=uname):
                entry = f.slots[_i]
                if entry.__class__ is FArray:
                    raise FortranError(f"{_n} is an array, not a scalar",
                                       unit=_u)
                return entry

        def run(f, _fc=first, _lc=last, _sc=step, _vc=var_cell,
                _idx=stmt.index, _term=stmt.terminal,
                _after=stmt.terminal + 1, _line=stmt.line, _u=uname):
            first = _fc(f)
            last = _lc(f)
            step = _sc(f) if _sc is not None else 1
            if step == 0:
                raise FortranError("DO step of zero", line=_line, unit=_u)
            cell = _vc(f)
            cell.set(first)
            trips = int((last - first + step) // step)
            if isinstance(first, float) or isinstance(last, float) or \
                    isinstance(step, float):
                trips = int((last - first + step) / step)
            if trips <= 0:
                return _after
            stack = f.do_stack
            if stack:
                stack[:] = [e for e in stack if e[0] != _idx]
            stack.append([_idx, _term, cell, step, trips])
            return None
        return _K_RUN, run

    def _st_end_do(self, stmt):
        return _K_RUN, _noop

    def _st_call(self, stmt):
        name = stmt.name
        handler = self.interp.external
        makers = tuple(self._argref(a) for a in stmt.args)
        if handler.is_external(name):
            def run(f, _n=name, _m=makers, _h=handler):
                return _h.call(_n, [mk(f) for mk in _m], f)
            return _K_RUN, run
        unit = self.program.units.get(name)
        if unit is None or unit.kind != "subroutine":
            uname = self.unit.name

            def run(f, _n=name, _line=stmt.line, _u=uname):
                raise FortranError(f"no subroutine named {_n}",
                                   line=_line, unit=_u)
            return _K_RUN, run
        interp = self.interp

        def run(f, _u=unit, _m=makers, _it=interp):
            return _it.run_unit(_u, [mk(f) for mk in _m], f.depth + 1,
                                process=f.process)
        return _K_RUN, run

    def _st_return(self, stmt):
        from repro.fortran.interp import _RETURN
        if not self.unit.params:
            def run(f, _r=_RETURN):
                return _r
            return _K_RUN, run
        interp = self.interp

        def run(f, _it=interp, _r=_RETURN):
            _it._run_copy_outs(f)
            return _r
        return _K_RUN, run

    def _st_stop(self, stmt):
        from repro.fortran.interp import StopSignal

        def run(f, _m=stmt.message, _sig=StopSignal):
            raise _sig(_m)
        return _K_RUN, run

    def _st_write(self, stmt):
        items = tuple(self._expr(e) for e in stmt.items)
        interp = self.interp
        if stmt.fmt_label is None:
            def run(f, _i=items, _it=interp):
                line = " ".join(format_value(c(f)) for c in _i)
                _it.output.append(line)
                callback = _it.on_output
                if callback is not None:
                    callback(line, f)
                return None
            return _K_RUN, run
        edits = self._resolve_format(stmt)

        def run(f, _i=items, _e=edits, _it=interp):
            values = [c(f) for c in _i]
            callback = _it.on_output
            for line in apply_format(_e, values):
                _it.output.append(line)
                if callback is not None:
                    callback(line, f)
            return None
        return _K_RUN, run

    def _resolve_format(self, stmt):
        """Resolve + parse the FORMAT at compile time (cached on the
        statement, shared with the tree-walker).  Malformed formats
        fall back to the tree-walker, which reports the error only if
        the statement actually executes."""
        if stmt.compiled_format is not None:
            return stmt.compiled_format
        unit = self.unit
        index = unit.label_index.get(stmt.fmt_label)
        if index is None:
            raise CompileUnsupported(
                f"no FORMAT labelled {stmt.fmt_label}")
        fmt_stmt = unit.statements[index]
        if not isinstance(fmt_stmt, ast.FormatStmt):
            raise CompileUnsupported(
                f"label {stmt.fmt_label} is not a FORMAT statement")
        text = fmt_stmt.text.strip()
        open_paren = text.find("(")
        if not text.upper().startswith("FORMAT") or open_paren < 0 \
                or not text.endswith(")"):
            raise CompileUnsupported(f"malformed FORMAT: {text!r}")
        try:
            stmt.compiled_format = parse_format(text[open_paren + 1:-1])
        except FortranError as exc:
            raise CompileUnsupported(str(exc)) from exc
        return stmt.compiled_format

    def _st_read(self, stmt):
        setters = tuple(self._store(t) for t in stmt.targets)
        interp = self.interp

        def run(f, _s=setters, _it=interp):
            for setter in _s:
                setter(f, _it._next_input(f))
            return None
        return _K_RUN, run

    def _store(self, target):
        """Compile an assignment target to ``store(frame, value)``."""
        uname = self.unit.name
        if target.__class__ is ast.Var:
            name = target.name
            kind = self._kind(name)
            if kind is _CELL:
                i = self._slot(name)

                def store(f, value, _i=i):
                    f.slots[_i].set(value)
                return store
            if kind is _MAYBE or kind is _ARRAY:
                i = self._slot(name)

                def store(f, value, _i=i, _n=name, _u=uname):
                    entry = f.slots[_i]
                    if entry.__class__ is FArray:
                        raise FortranError(
                            f"cannot assign scalar to whole array {_n}",
                            unit=_u)
                    entry.set(value)
                return store

            def store(f, value, _n=name, _u=uname):
                entry = f.vars.get(_n)
                if entry is not None and entry.__class__ is FArray:
                    raise FortranError(
                        f"cannot assign scalar to whole array {_n}",
                        unit=_u)
                f.get_or_create_scalar(_n).set(value)
            return store
        if target.__class__ is ast.Apply:
            name = target.name
            kind = self._kind(name)
            subs = tuple(self._expr(a) for a in target.args)
            if kind is _ARRAY or kind is _MAYBE:
                i = self._slot(name)

                def store(f, value, _i=i, _s=subs, _n=name, _u=uname):
                    entry = f.slots[_i]
                    if entry.__class__ is not FArray:
                        raise FortranError(f"{_n} is not an array",
                                           unit=_u)
                    entry.set(tuple(int(c(f)) for c in _s), value)
                return store

            def store(f, value, _s=subs, _n=name, _u=uname):
                entry = f.vars.get(_n)
                if entry is None or entry.__class__ is not FArray:
                    raise FortranError(f"{_n} is not an array", unit=_u)
                entry.set(tuple(int(c(f)) for c in _s), value)
            return store
        raise CompileUnsupported("bad assignment target")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _expr(self, expr):
        cls = expr.__class__
        if cls is ast.Num or cls is ast.Str or cls is ast.LogConst:
            value = expr.value

            def run(f, _v=value):
                return _v
            return run
        if cls is ast.Var:
            return self._var_read(expr.name)
        if cls is ast.BinOp:
            return self._binop(expr)
        if cls is ast.UnaryOp:
            return self._unary(expr)
        if cls is ast.Apply:
            return self._apply(expr)
        raise CompileUnsupported(f"cannot compile {expr!r}")

    def _var_read(self, name: str):
        kind = self._kind(name)
        uname = self.unit.name
        if kind is _CELL:
            i = self._slot(name)

            def run(f, _i=i):
                return f.slots[_i].value
            return run
        if kind is _ARRAY:
            def run(f, _n=name, _u=uname):
                raise FortranError(
                    f"whole array {_n} in scalar expression", unit=_u)
            return run
        if kind is _MAYBE:
            i = self._slot(name)

            def run(f, _i=i, _n=name, _u=uname):
                entry = f.slots[_i]
                if entry.__class__ is FArray:
                    raise FortranError(
                        f"whole array {_n} in scalar expression", unit=_u)
                return entry.value
            return run

        def run(f, _n=name, _u=uname):                   # _DYNAMIC
            entry = f.vars.get(_n)
            if entry is None:
                return f.get_or_create_scalar(_n).value
            if entry.__class__ is FArray:
                raise FortranError(
                    f"whole array {_n} in scalar expression", unit=_u)
            return entry.value
        return run

    def _unary(self, expr):
        operand = self._expr(expr.operand)
        op = expr.op
        if op == "-":
            def run(f, _o=operand):
                v = _o(f)
                if isinstance(v, (bool, str)):
                    raise FortranError(
                        f"expected numeric operand, got {v!r}")
                return -v
            return run
        if op == "+":
            def run(f, _o=operand):
                v = _o(f)
                if isinstance(v, (bool, str)):
                    raise FortranError(
                        f"expected numeric operand, got {v!r}")
                return v
            return run
        if op == ".NOT.":
            def run(f, _o=operand):
                v = _o(f)
                if v is True:
                    return False
                if v is False:
                    return True
                raise FortranError(f"expected LOGICAL, got {v!r}")
            return run
        raise CompileUnsupported(f"unary operator {op}")

    def _binop(self, expr):
        from repro.fortran.interp import _REL_MAP
        op = expr.op
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        if op == ".AND.":
            def run(f, _l=left, _r=right):
                a = _l(f)
                if a is False:
                    return False
                if a is not True:
                    raise FortranError(f"expected LOGICAL, got {a!r}")
                b = _r(f)
                if b is True or b is False:
                    return b
                raise FortranError(f"expected LOGICAL, got {b!r}")
            return run
        if op == ".OR.":
            def run(f, _l=left, _r=right):
                a = _l(f)
                if a is True:
                    return True
                if a is not False:
                    raise FortranError(f"expected LOGICAL, got {a!r}")
                b = _r(f)
                if b is True or b is False:
                    return b
                raise FortranError(f"expected LOGICAL, got {b!r}")
            return run
        if op == "//":
            def run(f, _l=left, _r=right):
                a = _l(f)
                b = _r(f)
                if not isinstance(a, str) or not isinstance(b, str):
                    raise FortranError("// requires CHARACTER operands")
                return a + b
            return run
        rel = _REL_MAP.get(op)
        if rel is not None:
            def run(f, _l=left, _r=right, _op=rel):
                a = _l(f)
                b = _r(f)
                if isinstance(a, str) != isinstance(b, str):
                    raise FortranError(
                        "cannot compare CHARACTER with numeric")
                return _op(a, b)
            return run
        if op == "+":
            def run(f, _l=left, _r=right):
                a = _l(f)
                b = _r(f)
                if isinstance(a, (bool, str)) or isinstance(b, (bool, str)):
                    _raise_non_numeric(a, b)
                return a + b
            return run
        if op == "-":
            def run(f, _l=left, _r=right):
                a = _l(f)
                b = _r(f)
                if isinstance(a, (bool, str)) or isinstance(b, (bool, str)):
                    _raise_non_numeric(a, b)
                return a - b
            return run
        if op == "*":
            def run(f, _l=left, _r=right):
                a = _l(f)
                b = _r(f)
                if isinstance(a, (bool, str)) or isinstance(b, (bool, str)):
                    _raise_non_numeric(a, b)
                return a * b
            return run
        if op == "/":
            def run(f, _l=left, _r=right):
                a = _l(f)
                b = _r(f)
                if isinstance(a, (bool, str)) or isinstance(b, (bool, str)):
                    _raise_non_numeric(a, b)
                if isinstance(a, int) and isinstance(b, int):
                    if b == 0:
                        raise FortranError("integer division by zero")
                    quotient = abs(a) // abs(b)
                    return quotient if (a < 0) == (b < 0) else -quotient
                if b == 0:
                    raise FortranError("division by zero")
                return a / b
            return run
        if op == "**":
            def run(f, _l=left, _r=right):
                a = _l(f)
                b = _r(f)
                if isinstance(a, (bool, str)) or isinstance(b, (bool, str)):
                    _raise_non_numeric(a, b)
                if isinstance(a, int) and isinstance(b, int):
                    if b < 0:
                        return 1 if a == 1 else (-1) ** b if a == -1 else 0
                    return a ** b
                return float(a) ** float(b)
            return run
        raise CompileUnsupported(f"operator {op}")

    def _apply(self, expr):
        name = expr.name
        kind = self._kind(name)
        subs = tuple(self._expr(a) for a in expr.args)
        if kind is _ARRAY:
            i = self._slot(name)
            if len(subs) == 1:
                s0 = subs[0]

                def run(f, _i=i, _s=s0):
                    sub = _s(f)
                    if sub.__class__ is not int:
                        sub = int(sub)
                    fast = f.fast[_i]
                    if fast is not None:
                        data, lb, n, _ = fast
                        offset = sub - lb
                        if 0 <= offset < n:
                            return data.item(offset)
                    return f.slots[_i].get((sub,))
                return run

            def run(f, _i=i, _s=subs):
                return f.slots[_i].get(tuple(int(c(f)) for c in _s))
            return run
        if kind is _MAYBE:
            i = self._slot(name)
            fallback = self._apply_fn(name, expr.args)

            def run(f, _i=i, _s=subs, _fb=fallback):
                entry = f.slots[_i]
                if entry.__class__ is FArray:
                    return entry.get(tuple(int(c(f)) for c in _s))
                return _fb(f)
            return run
        if kind is _DYNAMIC:
            fallback = self._apply_fn(name, expr.args)

            def run(f, _n=name, _s=subs, _fb=fallback):
                entry = f.vars.get(_n)
                if entry is not None and entry.__class__ is FArray:
                    return entry.get(tuple(int(c(f)) for c in _s))
                return _fb(f)
            return run
        return self._apply_fn(name, expr.args)           # _CELL

    def _apply_fn(self, name: str, arg_exprs):
        """Function-resolution path of Apply, in the interpreter's
        order: external function, intrinsic, user FUNCTION, error."""
        from repro.fortran.interp import Cost
        handler = self.interp.external
        if handler.is_external_function(name):
            makers = tuple(self._argref(a) for a in arg_exprs)

            def run(f, _n=name, _m=makers, _h=handler):
                return _h.call_function(_n, [mk(f) for mk in _m], f)
            return run
        if is_intrinsic(name):
            argcs = tuple(self._expr(a) for a in arg_exprs)

            def run(f, _n=name, _a=argcs):
                return call_intrinsic(_n, [c(f) for c in _a])
            return run
        unit = self.program.units.get(name)
        if unit is not None and unit.kind == "function":
            makers = tuple(self._argref(a) for a in arg_exprs)
            interp = self.interp

            def run(f, _u=unit, _m=makers, _it=interp, _cost=Cost):
                gen = _it.run_unit(_u, [mk(f) for mk in _m], 1,
                                   process=f.process)
                while True:
                    try:
                        event = next(gen)
                    except StopIteration as stop:
                        return stop.value
                    if not isinstance(event, _cost):
                        raise FortranError(
                            f"function {_u.name} attempted a blocking "
                            "operation (not allowed inside an expression)")
            return run
        uname = self.unit.name

        def run(f, _n=name, _u=uname):
            raise FortranError(
                f"{_n} is not an array, intrinsic or function", unit=_u)
        return run

    # ------------------------------------------------------------------
    # actual arguments (pass-by-reference)
    # ------------------------------------------------------------------
    def _argref(self, expr):
        from repro.fortran.interp import (
            ArrayRef, CellRef, ElementRef, ValueRef,
        )
        if expr.__class__ is ast.Var:
            name = expr.name
            kind = self._kind(name)
            if kind is not _DYNAMIC:
                i = self._slot(name)

                def mk(f, _i=i):
                    return f.argrefs[_i]
                return mk
            procedure = (name in self.program.units
                         or name in self._externals
                         or self.interp.external.is_external(name))
            const = ValueRef(name) if procedure else None

            def mk(f, _n=name, _c=const, _cr=CellRef, _ar=ArrayRef):
                entry = f.vars.get(_n)
                if entry is not None:
                    if entry.__class__ is FArray:
                        return _ar(entry)
                    return _cr(entry)
                if _c is not None:
                    return _c
                return _cr(f.get_or_create_scalar(_n))
            return mk
        if expr.__class__ is ast.Apply:
            name = expr.name
            kind = self._kind(name)
            if kind is _ARRAY or kind is _MAYBE:
                i = self._slot(name)
                subs = tuple(self._expr(a) for a in expr.args)
                value = self._expr(expr) if kind is _MAYBE else None

                def mk(f, _i=i, _s=subs, _v=value, _er=ElementRef,
                       _vr=ValueRef):
                    entry = f.slots[_i]
                    if entry.__class__ is FArray:
                        return _er(entry,
                                   tuple(int(c(f)) for c in _s))
                    return _vr(_v(f))
                return mk
            if kind is _DYNAMIC:
                subs = tuple(self._expr(a) for a in expr.args)
                value = self._expr(expr)

                def mk(f, _n=name, _s=subs, _v=value, _er=ElementRef,
                       _vr=ValueRef):
                    entry = f.vars.get(_n)
                    if entry is not None and entry.__class__ is FArray:
                        return _er(entry,
                                   tuple(int(c(f)) for c in _s))
                    return _vr(_v(f))
                return mk
        value = self._expr(expr)
        from repro.fortran.interp import ValueRef as _VR

        def mk(f, _v=value, _vr=_VR):
            return _vr(_v(f))
        return mk


def _noop(f):
    return None


def _raise_non_numeric(a, b):
    from repro.fortran.interp import _require_numeric
    _require_numeric(a)
    _require_numeric(b)


_STMT_DISPATCH = {
    ast.Assign: CompiledUnit._st_assign,
    ast.Continue: CompiledUnit._st_continue,
    ast.Goto: CompiledUnit._st_goto,
    ast.ComputedGoto: CompiledUnit._st_computed_goto,
    ast.LogicalIf: CompiledUnit._st_logical_if,
    ast.IfThen: CompiledUnit._st_if_then,
    ast.ElseIf: CompiledUnit._st_else_if,
    ast.Else: CompiledUnit._st_else,
    ast.EndIf: CompiledUnit._st_end_if,
    ast.Do: CompiledUnit._st_do,
    ast.EndDo: CompiledUnit._st_end_do,
    ast.Call: CompiledUnit._st_call,
    ast.Return: CompiledUnit._st_return,
    ast.EndUnit: CompiledUnit._st_return,
    ast.Stop: CompiledUnit._st_stop,
    ast.Write: CompiledUnit._st_write,
    ast.Read: CompiledUnit._st_read,
}
