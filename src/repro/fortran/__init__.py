"""A Fortran-77 subset front end and interpreter.

The Force is a Fortran language extension; after the sed and m4 stages,
a Force program *is* Fortran plus calls into the Force runtime library.
On the paper's machines the manufacturer's Fortran compiler finished the
job (§4.3); here this package plays that role, executing the expanded
code directly.

The dialect ("F77 subset, relaxed form") covers what macro-expanded
Force programs and realistic numerical kernels need:

* program units: ``PROGRAM``, ``SUBROUTINE``, ``FUNCTION`` … ``END``;
* types ``INTEGER``, ``REAL``, ``DOUBLE PRECISION``, ``LOGICAL``,
  ``CHARACTER``; arrays with constant or adjustable bounds, including
  explicit lower bounds (``A(0:N)``);
* ``COMMON`` blocks (name + position matched), ``PARAMETER``, ``DATA``,
  ``DIMENSION``, ``EXTERNAL``;
* assignment, logical ``IF``, block ``IF/ELSE IF/ELSE/END IF``,
  ``DO``-loops (labelled terminal or ``END DO``), ``GO TO``,
  ``CONTINUE``, ``CALL``, ``RETURN``, ``STOP``, list-directed
  ``WRITE(*,*)``/``PRINT *``;
* the usual intrinsics (``ABS``, ``MOD``, ``MAX``, ``SQRT`` …) and user
  functions.

Layout is relaxed fixed-form: a statement is one line, optionally
preceded by a numeric label; ``C``/``*``/``!`` in column one start a
comment; a trailing ``&`` continues the statement on the next line.
Identifiers are case-insensitive (normalised to upper case).
"""

from repro.fortran.lexer import tokenize_statement, Token, TokenKind
from repro.fortran.parser import parse_source, ProgramUnit, Program
from repro.fortran.interp import (
    ArgRef,
    ArrayRef,
    Cell,
    CellRef,
    CommonProvider,
    Cost,
    ElementRef,
    ExternalCallHandler,
    Frame,
    Halt,
    Interpreter,
    StopSignal,
    ValueRef,
    drain,
)
from repro.fortran.values import (
    FArray,
    FType,
    FValue,
    coerce_assign,
    ftype_of,
)
from repro._util.errors import FortranError

__all__ = [
    "tokenize_statement",
    "Token",
    "TokenKind",
    "parse_source",
    "ProgramUnit",
    "Program",
    "ArgRef",
    "ArrayRef",
    "Cell",
    "CellRef",
    "CommonProvider",
    "Cost",
    "ElementRef",
    "ExternalCallHandler",
    "Frame",
    "Halt",
    "Interpreter",
    "StopSignal",
    "ValueRef",
    "drain",
    "FArray",
    "FType",
    "FValue",
    "coerce_assign",
    "ftype_of",
    "FortranError",
]
