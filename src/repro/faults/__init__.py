"""Deterministic fault injection and chaos testing for the Force.

Public surface:

* :mod:`repro.faults.plan` — :class:`FaultPlan`/:class:`FaultSpec`,
  the ``KIND@SITE[/NAME][:key=value,...]`` spec grammar, and
  :func:`random_plan` for seeded plan derivation;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` consulted
  from the runtime's interception sites, plus the fault exceptions;
* :mod:`repro.faults.corpus` — native workloads with result oracles;
* :mod:`repro.faults.chaos` — the sweep harness behind ``force chaos``.

The corpus/chaos names are loaded lazily (PEP 562): the runtime
imports :mod:`repro.faults.injector`, and chaos imports the runtime,
so eager re-export here would be circular.
"""

from repro.faults.injector import (
    FaultInjector,
    InjectedDeath,
    InjectedFault,
    InjectionRecord,
)
from repro.faults.plan import (
    FAULT_KINDS,
    NOTIFY_SITES,
    SITES,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    parse_fault_spec,
    random_plan,
)

_CORPUS_EXPORTS = ("CORPUS", "ChaosCheckError", "ChaosProgram")
_CHAOS_EXPORTS = ("ChaosOutcome", "ChaosReport", "chaos_sweep",
                  "render_report", "run_one", "write_failure_artifacts")

__all__ = [
    "FAULT_KINDS",
    "NOTIFY_SITES",
    "SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
    "InjectedDeath",
    "InjectedFault",
    "InjectionRecord",
    "parse_fault_spec",
    "random_plan",
    *_CORPUS_EXPORTS,
    *_CHAOS_EXPORTS,
]


def __getattr__(name: str):
    if name in _CORPUS_EXPORTS:
        from repro.faults import corpus
        return getattr(corpus, name)
    if name in _CHAOS_EXPORTS:
        from repro.faults import chaos
        return getattr(chaos, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
