"""Deterministic fault plans for the native Force runtime.

A :class:`FaultPlan` is a *seeded, replayable* schedule of faults: each
:class:`FaultSpec` names a fault kind, the interception site it fires
at, and which occurrence in which process triggers it.  Because the
trigger is an exact occurrence count (not a probability evaluated at
run time), re-running the same plan injects the same fault sequence —
the property the chaos harness's replay-with-seed workflow rests on.

Fault kinds
-----------

``raise``
    Raise :class:`~repro.faults.injector.InjectedFault` in the target
    process at the site — an ordinary program error, exercising the
    fail-fast poisoning path (PR 1).
``die``
    Abrupt death of the target process *without construct cleanup*:
    held askfor items stay held, an entered selfsched loop is never
    exited, a barrier partner never arrives.  Exercises the
    dead-worker detection and deadline paths.
``delay``
    Sleep ``seconds`` at the site — a slow lock holder, slow producer
    or slow barrier partner.  The run must still complete correctly.
``lost-wakeup``
    Swallow one ``notify`` at the site (asyncvar produce/consume/void,
    askfor put).  Waiters must survive via periodic revalidation.

Site identifiers
----------------

Sites are the same interception points the stats/trace hooks use::

    barrier.entry      barrier.episode
    critical.acquire   critical.hold
    selfsched.chunk
    askfor.put         askfor.got
    asyncvar.produce   asyncvar.consume   asyncvar.copy   asyncvar.void

Spec grammar (the CLI's ``--inject`` argument)::

    KIND@SITE[/NAME][:key=value[,key=value...]]

    raise@barrier.entry:proc=2,n=3      # 3rd barrier entry of process 2
    die@askfor.got/jobs:proc=1          # process 1 dies holding a job
    delay@critical.hold/hot:seconds=0.2 # slow holder of critical 'hot'
    lost-wakeup@asyncvar.produce/chan   # swallow one produce notify

``proc=0`` (the default) matches any process; ``n`` counts matching
occurrences (default 1 — the first).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any

from repro._util.errors import ForceError

FAULT_KINDS = ("raise", "die", "delay", "lost-wakeup")

#: interception sites, mirroring the stats/trace hook points
SITES = (
    "barrier.entry",
    "barrier.episode",
    "critical.acquire",
    "critical.hold",
    "selfsched.chunk",
    "askfor.put",
    "askfor.got",
    "asyncvar.produce",
    "asyncvar.consume",
    "asyncvar.copy",
    "asyncvar.void",
)

#: sites where a ``lost-wakeup`` spec makes sense (they notify someone)
NOTIFY_SITES = ("asyncvar.produce", "asyncvar.consume", "asyncvar.void",
                "askfor.put")


class FaultSpecError(ForceError):
    """A fault spec or plan is malformed."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``kind`` at occurrence ``occurrence`` of
    ``site`` (optionally narrowed to construct ``name`` and process
    ``proc``)."""

    kind: str
    site: str
    name: str = ""          # construct name; "" matches any
    proc: int = 0           # force process id; 0 matches any
    occurrence: int = 1     # 1-based count of matching hits
    seconds: float = 0.05   # delay duration (kind == "delay")

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}")
        if self.site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{', '.join(SITES)}")
        if self.kind == "lost-wakeup" and self.site not in NOTIFY_SITES:
            raise FaultSpecError(
                f"lost-wakeup applies only to notifying sites "
                f"({', '.join(NOTIFY_SITES)}), not {self.site!r}")
        if self.proc < 0:
            raise FaultSpecError("proc must be >= 0 (0 = any process)")
        if self.occurrence < 1:
            raise FaultSpecError("occurrence must be >= 1")
        if self.seconds < 0:
            raise FaultSpecError("seconds must be >= 0")

    def matches(self, site: str, name: str, proc: int) -> bool:
        """Does a hit at (site, name, proc) count toward this spec?"""
        return (site == self.site
                and (not self.name or self.name == name)
                and (self.proc == 0 or self.proc == proc))

    def describe(self) -> str:
        where = self.site + (f"/{self.name}" if self.name else "")
        who = f"proc={self.proc}" if self.proc else "any proc"
        text = f"{self.kind}@{where} ({who}, occurrence {self.occurrence}"
        if self.kind == "delay":
            text += f", {self.seconds}s"
        return text + ")"

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "site": self.site, "name": self.name,
                "proc": self.proc, "occurrence": self.occurrence,
                "seconds": self.seconds}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        try:
            return cls(kind=data["kind"], site=data["site"],
                       name=data.get("name", ""),
                       proc=int(data.get("proc", 0)),
                       occurrence=int(data.get("occurrence", 1)),
                       seconds=float(data.get("seconds", 0.05)))
        except KeyError as exc:
            raise FaultSpecError(
                f"fault spec is missing required key {exc}") from None


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the ``KIND@SITE[/NAME][:key=value,...]`` grammar."""
    head, _, options = text.partition(":")
    kind, sep, where = head.partition("@")
    if not sep or not kind or not where:
        raise FaultSpecError(
            f"bad fault spec {text!r}: expected KIND@SITE[/NAME]"
            "[:key=value,...]")
    site, _, name = where.partition("/")
    fields: dict[str, Any] = {"kind": kind.strip(), "site": site.strip(),
                              "name": name.strip()}
    if options:
        for item in options.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep:
                raise FaultSpecError(
                    f"bad fault option {item!r} in {text!r}: expected "
                    "key=value")
            try:
                if key == "proc":
                    fields["proc"] = int(value)
                elif key == "n":
                    fields["occurrence"] = int(value)
                elif key == "seconds":
                    fields["seconds"] = float(value)
                else:
                    raise FaultSpecError(
                        f"unknown fault option {key!r} in {text!r}; "
                        "expected proc=, n= or seconds=")
            except ValueError:
                raise FaultSpecError(
                    f"bad value for {key!r} in {text!r}") from None
    return FaultSpec(**fields)


@dataclass
class FaultPlan:
    """A seeded list of fault specs — one replayable chaos scenario."""

    seed: int = 0
    faults: list[FaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise FaultSpecError(
                    f"plan entries must be FaultSpec, got {spec!r}")

    def describe(self) -> str:
        lines = [f"fault plan (seed {self.seed}, "
                 f"{len(self.faults)} fault(s)):"]
        lines += [f"  {spec.describe()}" for spec in self.faults]
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        return {"seed": self.seed,
                "faults": [spec.as_dict() for spec in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict) or "faults" not in data:
            raise FaultSpecError(
                "fault plan JSON must be an object with a 'faults' list")
        faults = [FaultSpec.from_dict(entry)
                  for entry in data["faults"]]
        return cls(seed=int(data.get("seed", 0)), faults=faults)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise FaultSpecError(f"bad fault plan JSON: {exc}") from None

    @classmethod
    def from_specs(cls, specs: list[str], seed: int = 0) -> "FaultPlan":
        return cls(seed=seed,
                   faults=[parse_fault_spec(s) for s in specs])


def random_plan(seed: int, *, nproc: int,
                max_faults: int = 2,
                sites: tuple[str, ...] = SITES,
                max_occurrence: int = 4,
                delay_seconds: float = 0.1,
                kinds: tuple[str, ...] | None = None) -> FaultPlan:
    """One deterministic random plan from ``seed``.

    The same ``(seed, nproc)`` always produces the identical plan —
    chaos sweeps iterate seeds, and a failing seed replays exactly.

    ``kinds`` restricts the drawn fault kinds (e.g. ``("die",)`` for a
    recovery sweep where every fault must be a worker death); omitted,
    the historical mixed distribution is used, so existing seeded
    sweeps keep their plans.
    """
    if kinds is not None:
        if not kinds:
            raise FaultSpecError("kinds must name at least one kind")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise FaultSpecError(
                    f"unknown fault kind {kind!r}; expected one of "
                    f"{', '.join(FAULT_KINDS)}")
        if set(kinds) == {"lost-wakeup"}:
            sites = tuple(s for s in sites if s in NOTIFY_SITES) \
                or NOTIFY_SITES
    rng = random.Random(seed)
    count = rng.randint(1, max(1, max_faults))
    faults = []
    for _ in range(count):
        site = rng.choice(sites)
        if kinds is not None:
            # Never empty: a kinds of exactly {"lost-wakeup"} already
            # restricted sites to the notifying ones above.
            allowed = tuple(k for k in kinds if k != "lost-wakeup"
                            or site in NOTIFY_SITES)
            kind = rng.choice(allowed)
        elif site in NOTIFY_SITES and rng.random() < 0.25:
            kind = "lost-wakeup"
        else:
            kind = rng.choice(("raise", "die", "delay", "delay"))
        faults.append(FaultSpec(
            kind=kind, site=site,
            proc=rng.randint(0, nproc),
            occurrence=rng.randint(1, max_occurrence),
            seconds=round(rng.uniform(0.01, delay_seconds), 3)))
    return FaultPlan(seed=seed, faults=faults)
