"""The chaos corpus: native Force workloads with result oracles.

These mirror the examples corpus (:mod:`repro.core.programs`) on the
native runtime — one workload per construct family — and each carries
a ``check`` oracle asserting the exact expected result.  The chaos
harness runs them under injected fault plans; the oracle is what turns
"the run completed" into "the run completed *correctly*", i.e. what
detects silent corruption.

Every program is deliberately small (well under a second uninjected)
so a multi-hundred-run sweep stays cheap, and correct for any
``nproc >= 1`` so the harness can vary the force width.

Recoverable-program contract
----------------------------

These programs double as the recovery corpus (PR 9): a supervised
retry restores the newest barrier-epoch checkpoint and *re-runs the
program from the top* over the restored shared state.  For that to be
correct, each program keeps ALL cross-phase progress in shared
constructs and guards completed phases with shared flags/counters:

* phase guards are read *before* the phase's opening barrier, so every
  process takes the same branch (the restored cut is consistent);
* each barrier-delimited phase is a deterministic, idempotent function
  of the shared state at its opening barrier — re-running a partially
  executed phase from its opening cut reproduces it bit-for-bit;
* accumulating phases (``sum_critical``, ``dot_product``) set a shared
  done-flag in the closing barrier's single-process section, so a
  resume after completion never double-adds;
* numeric workloads use exactly representable float64 values (dyadic
  rationals), so reductions are order- and nproc-independent down to
  the bit — the property the chaos harness's differential state-digest
  oracle checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.runtime.force import Force


class ChaosCheckError(AssertionError):
    """A chaos run completed but produced a wrong result."""


@dataclass(frozen=True)
class ChaosProgram:
    """One corpus entry: the program plus its result oracle."""

    name: str
    program: Callable[[Force, int], None]
    check: Callable[[Force], None]
    #: default force width (harness may override)
    nproc: int = 4
    #: construct families the program exercises (documentation/report)
    exercises: tuple[str, ...] = ()


CORPUS: dict[str, ChaosProgram] = {}


def _register(name: str, program, check, *, nproc: int = 4,
              exercises: tuple[str, ...] = ()) -> None:
    CORPUS[name] = ChaosProgram(name=name, program=program, check=check,
                                nproc=nproc, exercises=exercises)


def corpus_names() -> list[str]:
    return list(CORPUS)


def _expect(name: str, actual, expected) -> None:
    if actual != expected:
        raise ChaosCheckError(
            f"{name}: expected {expected!r}, got {actual!r} "
            "(silent corruption)")


# ----------------------------------------------------------------------
# 1. sum_critical — selfsched DOALL + critical reduction
# ----------------------------------------------------------------------
_SUM_N = 60


def _sum_critical(force: Force, me: int) -> None:
    total = force.shared_counter("total")
    done = force.shared_counter("sum_done")
    if not done.value:       # phase guard: skip after a resumed finish
        for k in force.selfsched_range("sumloop", 1, _SUM_N):
            with force.critical("sum"):
                total.value += k

        def finish() -> None:
            done.value = 1

        force.barrier_section(me, finish)
    force.barrier()


def _check_sum_critical(force: Force) -> None:
    _expect("sum_critical", force.shared_counter("total").value,
            _SUM_N * (_SUM_N + 1) // 2)


_register("sum_critical", _sum_critical, _check_sum_critical,
          exercises=("selfsched", "critical", "barrier"))


# ----------------------------------------------------------------------
# 2. jacobi — presched DOALL sweeps separated by barriers
# ----------------------------------------------------------------------
_JACOBI_N, _JACOBI_SWEEPS = 24, 10


def _jacobi(force: Force, me: int) -> None:
    u = force.shared_array("u", _JACOBI_N)
    unew = force.shared_array("unew", _JACOBI_N)
    sweep = force.shared_counter("sweep")

    def init() -> None:
        u[0] = u[-1] = 100.0    # idempotent: boundaries never change

    force.barrier_section(me, init)
    # Cross-phase progress lives in the shared sweep counter, not a
    # local loop variable: a resumed run picks up at the sweep the
    # restored cut recorded, and re-relaxing a half-finished sweep
    # from its opening barrier recomputes identical values.
    while int(sweep.value) < _JACOBI_SWEEPS:
        for i in force.presched_range(me, 1, _JACOBI_N - 2):
            unew[i] = 0.5 * (u[i - 1] + u[i + 1])
        force.barrier()
        for i in force.presched_range(me, 1, _JACOBI_N - 2):
            u[i] = unew[i]

        def bump() -> None:
            sweep.value += 1

        force.barrier_section(me, bump)


def _check_jacobi(force: Force) -> None:
    expected = np.zeros(_JACOBI_N)
    expected[0] = expected[-1] = 100.0
    for _ in range(_JACOBI_SWEEPS):
        nxt = expected.copy()
        nxt[1:-1] = 0.5 * (expected[:-2] + expected[2:])
        expected = nxt
    actual = force.shared_array("u", _JACOBI_N)
    if not np.allclose(actual, expected):
        raise ChaosCheckError(
            "jacobi: relaxed field diverges from the numpy oracle "
            "(silent corruption)")


_register("jacobi", _jacobi, _check_jacobi,
          exercises=("presched", "barrier", "barrier-section"))


# ----------------------------------------------------------------------
# 3. dot_product — selfsched + critical reduction over numpy arrays
# ----------------------------------------------------------------------
_DOT_N = 80


def _dot_product(force: Force, me: int) -> None:
    x = force.shared_array("x", _DOT_N)
    y = force.shared_array("y", _DOT_N)
    result = force.shared_counter("dot", 0.0)

    def init() -> None:
        x[:] = np.arange(1, _DOT_N + 1)
        y[:] = 2.0

    done = force.shared_counter("dot_done")
    force.barrier_section(me, init)
    if not done.value:       # phase guard: skip after a resumed finish
        partial = 0.0
        for i in force.selfsched_range("dotloop", 0, _DOT_N - 1):
            partial += x[i] * y[i]
        with force.critical("reduce"):
            result.value += partial

        def finish() -> None:
            done.value = 1

        force.barrier_section(me, finish)
    force.barrier()


def _check_dot_product(force: Force) -> None:
    expected = float(_DOT_N * (_DOT_N + 1))   # sum(2k) = n(n+1)
    _expect("dot_product", force.shared_counter("dot").value, expected)


_register("dot_product", _dot_product, _check_dot_product,
          exercises=("selfsched", "critical", "barrier"))


# ----------------------------------------------------------------------
# 4. pipeline — producer/consumer over an asynchronous variable
# ----------------------------------------------------------------------
_PIPE_ITEMS = 24


def _pipeline(force: Force, me: int) -> None:
    # Recoverable by structure: the single phase closes at the final
    # barrier, so the only snapshot a checkpointed run can take is the
    # completed state — a killed attempt's partial progress is
    # discarded and the retry restarts the phase from scratch.
    if force.nproc == 1:        # a single-cell channel needs two ends
        force.barrier()
        return
    channel = force.async_var("chan")
    sink = force.shared_counter("sink")
    if me == 1:
        for k in range(1, _PIPE_ITEMS + 1):
            channel.produce(k * k)
    elif me == 2:
        for _ in range(_PIPE_ITEMS):
            with force.critical("sink"):
                sink.value += channel.consume()
    force.barrier()


def _check_pipeline(force: Force) -> None:
    expected = sum(k * k for k in range(1, _PIPE_ITEMS + 1)) \
        if force.nproc > 1 else 0
    _expect("pipeline", force.shared_counter("sink").value, expected)


_register("pipeline", _pipeline, _check_pipeline,
          exercises=("asyncvar", "critical", "barrier"))


# ----------------------------------------------------------------------
# 5. askfor_tree — dynamic tree-shaped work over the Askfor monitor
# ----------------------------------------------------------------------
_TREE_DEPTH = 4


def _askfor_tree(force: Force, me: int) -> None:
    # Every process offers the same seed; creation happens exactly once
    # (first creator wins), so there is no seeding race.  Recoverable
    # by nature: the pool IS the progress state — a restored cut holds
    # the un-drained items and the count so far, and re-draining from
    # there yields the same total.
    pool = force.askfor("work", [_TREE_DEPTH])
    count = force.shared_counter("nodes")
    force.barrier()
    for w in pool:
        if w > 1:
            pool.put(w - 1)
            pool.put(w - 1)
        with force.critical("count"):
            count.value += 1
    force.barrier()


def _check_askfor_tree(force: Force) -> None:
    _expect("askfor_tree", force.shared_counter("nodes").value,
            2 ** _TREE_DEPTH - 1)


_register("askfor_tree", _askfor_tree, _check_askfor_tree,
          exercises=("askfor", "critical", "barrier"))


# ----------------------------------------------------------------------
# 6. sections — Pcase sections + barrier-section reduction
# ----------------------------------------------------------------------
def _sections(force: Force, me: int) -> None:
    cells = force.shared_array("r", 4, dtype=np.int64)
    force.barrier()
    force.pcase(me,
                lambda: cells.__setitem__(0, 10),
                lambda: cells.__setitem__(1, 20),
                lambda: cells.__setitem__(2, 30),
                (lambda: True, lambda: cells.__setitem__(3, 40)))
    force.barrier()
    total = force.shared_counter("sections_total")

    def reduce_() -> None:
        total.value = int(cells.sum())

    force.barrier_section(me, reduce_)


def _check_sections(force: Force) -> None:
    _expect("sections",
            force.shared_counter("sections_total").value, 100)


_register("sections", _sections, _check_sections,
          exercises=("pcase", "barrier", "barrier-section"))
