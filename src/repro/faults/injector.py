"""Fault execution: deterministic triggering at runtime hook sites.

The :class:`FaultInjector` lives on a :class:`~repro.runtime.force.Force`
run (``Force(..., inject=plan)``) and is consulted from the *same*
interception points the stats/trace layers use.  Each consultation is
one ``fire(site, name, me)`` call; the injector counts matching hits
per spec and executes the spec's fault exactly at its scheduled
occurrence:

* ``raise``  — raises :class:`InjectedFault` (an ordinary
  :class:`~repro._util.errors.ForceError` subclass, so it propagates
  like any program error);
* ``die``    — raises :class:`InjectedDeath`, a ``BaseException`` the
  runtime translates into abrupt thread death *without construct
  cleanup*;
* ``delay``  — sleeps ``spec.seconds`` in place;
* ``lost-wakeup`` — armed via :meth:`swallow_notify`, which the
  notifying construct consults before its ``notify``; a True return
  means "drop this wakeup".

Every executed fault is appended to :attr:`FaultInjector.injected`
(and recorded as a ``fault`` trace event when tracing is on), so a
chaos run can report — and a replay can verify — exactly what was
injected where.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro._util.errors import ForceError
from repro.faults.plan import FaultPlan, FaultSpec

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.trace.collector import TraceCollector


class InjectedFault(ForceError):
    """A fault injected by a :class:`FaultPlan` ``raise`` spec."""

    def __init__(self, spec: FaultSpec, me: int) -> None:
        self.spec = spec
        self.me = me
        super().__init__(
            f"injected fault at {spec.site}"
            f"{'/' + spec.name if spec.name else ''} "
            f"(process {me}, occurrence {spec.occurrence})")


class InjectedDeath(BaseException):
    """Abrupt injected thread death (not an Exception: user ``except
    Exception`` blocks in programs must not swallow it)."""

    def __init__(self, spec: FaultSpec, me: int) -> None:
        self.spec = spec
        self.me = me
        super().__init__(f"process {me} killed at {spec.site}")


@dataclass(frozen=True)
class InjectionRecord:
    """One executed fault: what fired, where, in which process."""

    kind: str
    site: str
    name: str
    proc: int
    occurrence: int

    def describe(self) -> str:
        where = self.site + (f"/{self.name}" if self.name else "")
        return (f"{self.kind}@{where} in process {self.proc} "
                f"(occurrence {self.occurrence})")


class FaultInjector:
    """Executes one :class:`FaultPlan` against one Force run.

    Hit counting is per spec under one lock, so the n-th matching
    occurrence is exact regardless of thread interleaving; each spec
    fires at most once.
    """

    def __init__(self, plan: FaultPlan, *,
                 tracer: "TraceCollector | None" = None,
                 sleep=time.sleep) -> None:
        self.plan = plan
        self._tracer = tracer
        self._sleep = sleep
        self._lock = threading.Lock()
        self._hits = [0] * len(plan.faults)
        self._fired = [False] * len(plan.faults)
        #: executed faults, in firing order
        self.injected: list[InjectionRecord] = []

    # ------------------------------------------------------------------
    # trigger matching
    # ------------------------------------------------------------------
    def _due(self, site: str, name: str, me: int,
             kinds: tuple[str, ...]) -> FaultSpec | None:
        """Count this hit; return the spec that fires now (if any)."""
        with self._lock:
            due = None
            for index, spec in enumerate(self.plan.faults):
                if spec.kind not in kinds or self._fired[index]:
                    continue
                if not spec.matches(site, name, me):
                    continue
                self._hits[index] += 1
                if self._hits[index] == spec.occurrence and due is None:
                    self._fired[index] = True
                    due = spec
            if due is not None:
                self._record(due, site, name, me)
            return due

    def _record(self, spec: FaultSpec, site: str, name: str,
                me: int) -> None:
        """Log the firing (lock held: keeps ``injected`` ordered)."""
        record = InjectionRecord(kind=spec.kind, site=site, name=name,
                                 proc=me, occurrence=spec.occurrence)
        self.injected.append(record)
        if self._tracer is not None:
            self._tracer.record("fault", site, spec.kind,
                                detail=record.describe(),
                                proc=me, occurrence=spec.occurrence)

    @staticmethod
    def _me_of(me: int | None) -> int:
        """Resolve the force process id, falling back to thread name."""
        if me is not None:
            return me
        name = threading.current_thread().name
        if name.startswith("force-"):
            try:
                return int(name[6:])
            except ValueError:
                pass
        return 0

    # ------------------------------------------------------------------
    # hook-site API
    # ------------------------------------------------------------------
    def fire(self, site: str, name: str = "",
             me: int | None = None) -> None:
        """Consult the plan at an interception site; execute any
        ``raise``/``die``/``delay`` fault scheduled for this hit."""
        spec = self._due(site, name, self._me_of(me),
                         ("raise", "die", "delay"))
        if spec is None:
            return
        if spec.kind == "raise":
            raise InjectedFault(spec, self._me_of(me))
        if spec.kind == "die":
            raise InjectedDeath(spec, self._me_of(me))
        self._sleep(spec.seconds)   # kind == "delay"

    def swallow_notify(self, site: str, name: str = "",
                       me: int | None = None) -> bool:
        """True exactly when a ``lost-wakeup`` spec fires here — the
        caller must then *skip* its notify."""
        spec = self._due(site, name, self._me_of(me), ("lost-wakeup",))
        return spec is not None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> str:
        if not self.injected:
            return "no faults injected"
        return "\n".join(record.describe() for record in self.injected)
