"""The chaos harness: seeded fault sweeps over the native corpus.

One chaos *run* executes one corpus program under one
:class:`~repro.faults.plan.FaultPlan` and classifies the outcome.  The
harness asserts the robustness invariant this subsystem exists for:

    Under any injected fault plan, a run terminates within its
    deadline with either a *correct result* or a *structured error
    naming the faulted process/construct* — never a hang, never
    silent corruption.

Outcome classes
---------------

Invariant-satisfying:

``ok``
    The force completed and the program's result oracle passed.
``injected-error``
    The run failed with the injected :class:`InjectedFault` itself
    (fail-fast poisoning worked).
``worker-died``
    An injected death was detected and reported as
    :class:`~repro._util.errors.ForceWorkerDied` naming the process.
``deadlock``
    A stranded construct was reported as
    :class:`~repro._util.errors.ForceDeadlockError` naming it.

Invariant violations:

``corrupt``
    The force *completed* but the oracle failed — silent corruption.
``program-error``
    An unexpected error not traceable to the injection (the corpus
    programs are correct, so this is a runtime bug).
``hang``
    The run exceeded its wall budget (``deadline`` + grace) — even if
    it eventually returned, the no-hang guarantee was broken.

A sweep iterates ``runs`` seeds (``seed0 + i``), derives one
:func:`~repro.faults.plan.random_plan` per seed, and cycles through
the corpus; the same ``(seed0, runs, nproc)`` always replays the same
plans, so any failing seed reproduces its fault sequence exactly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from time import monotonic
from typing import Any

from repro.faults.corpus import CORPUS, ChaosCheckError, ChaosProgram
from repro.faults.injector import InjectedFault
from repro.faults.plan import FaultPlan, random_plan
from repro.runtime.force import Force, ForceProgramError
from repro._util.errors import (
    ForceDeadlockError,
    ForceError,
    ForceWorkerDied,
)
from repro.trace.export import write_trace_file

#: outcome classes that satisfy the chaos invariant
INVARIANT_OK = ("ok", "injected-error", "worker-died", "deadlock")

#: outcome classes that violate it
INVARIANT_VIOLATIONS = ("corrupt", "program-error", "hang")

#: extra wall-clock slack beyond the join deadline before a run counts
#: as a hang (join + construct teardown + interpreter overhead)
HANG_GRACE = 5.0

#: construct family (ChaosProgram.exercises) -> injection sites the
#: family actually visits; targeting plans at these keeps the sweep's
#: fault hit rate high instead of scheduling faults at sites a
#: program never reaches
_FAMILY_SITES: dict[str, tuple[str, ...]] = {
    "barrier": ("barrier.entry", "barrier.episode"),
    "barrier-section": ("barrier.entry",),
    "critical": ("critical.acquire", "critical.hold"),
    "selfsched": ("selfsched.chunk",),
    "askfor": ("askfor.put", "askfor.got"),
    "asyncvar": ("asyncvar.produce", "asyncvar.consume"),
}


def sites_for(entry: ChaosProgram) -> tuple[str, ...]:
    """The injection sites a corpus program can actually reach."""
    sites: list[str] = []
    for family in entry.exercises:
        for site in _FAMILY_SITES.get(family, ()):
            if site not in sites:
                sites.append(site)
    return tuple(sites) or ("barrier.entry",)


@dataclass
class ChaosOutcome:
    """One classified chaos run."""

    program: str
    seed: int
    status: str
    elapsed: float
    error: str = ""
    injected: list[str] = field(default_factory=list)
    plan: FaultPlan | None = None

    @property
    def violates_invariant(self) -> bool:
        return self.status in INVARIANT_VIOLATIONS

    def describe(self) -> str:
        text = (f"{self.program} seed={self.seed}: {self.status} "
                f"({self.elapsed:.2f}s, "
                f"{len(self.injected)} fault(s) injected)")
        if self.error:
            text += f"\n    {self.error}"
        for fired in self.injected:
            text += f"\n    injected: {fired}"
        return text

    def as_dict(self) -> dict[str, Any]:
        return {"program": self.program, "seed": self.seed,
                "status": self.status,
                "elapsed": round(self.elapsed, 4),
                "error": self.error, "injected": list(self.injected),
                "plan": self.plan.as_dict() if self.plan else None}


def _classify_failure(exc: ForceError) -> tuple[str, str]:
    """Map a Force.run failure to (status, message)."""
    if isinstance(exc, ForceWorkerDied):
        return "worker-died", str(exc)
    if isinstance(exc, ForceDeadlockError):
        return "deadlock", str(exc)
    if isinstance(exc, ForceProgramError):
        if isinstance(exc.original, InjectedFault):
            return "injected-error", str(exc)
        return "program-error", str(exc)
    return "program-error", str(exc)


def run_one(entry: ChaosProgram, plan: FaultPlan, *,
            nproc: int | None = None,
            deadline: float = 10.0,
            construct_timeout: float = 2.0,
            barrier_algorithm: str = "central-counter",
            trace: bool = True) -> tuple[ChaosOutcome, Force]:
    """Execute one corpus program under one fault plan and classify.

    Returns the outcome *and* the force, so callers can pull trace
    events for failure artifacts.
    """
    width = nproc or entry.nproc
    force = Force(width, timeout=deadline,
                  construct_timeout=construct_timeout,
                  barrier_algorithm=barrier_algorithm,
                  trace=trace, inject=plan)
    start = monotonic()
    status, error = "ok", ""
    try:
        force.run(entry.program)
    except ForceError as exc:
        status, error = _classify_failure(exc)
    else:
        try:
            entry.check(force)
        except ChaosCheckError as exc:
            status, error = "corrupt", str(exc)
    elapsed = monotonic() - start
    if elapsed > deadline + HANG_GRACE:
        # It returned eventually, but way past its budget: the no-hang
        # guarantee is already broken.
        status = "hang"
        error = (f"run took {elapsed:.1f}s against a {deadline:.1f}s "
                 f"deadline (+{HANG_GRACE:.0f}s grace)" +
                 (f"; underlying: {error}" if error else ""))
    injected = [record.describe()
                for record in (force.injected_faults() or [])]
    outcome = ChaosOutcome(program=entry.name, seed=plan.seed,
                           status=status, elapsed=elapsed,
                           error=error, injected=injected, plan=plan)
    return outcome, force


@dataclass
class ChaosReport:
    """Aggregate of one sweep."""

    seed: int
    runs: int
    nproc: int
    outcomes: list[ChaosOutcome]

    @property
    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return dict(sorted(tally.items()))

    @property
    def faults_injected(self) -> int:
        return sum(len(outcome.injected) for outcome in self.outcomes)

    @property
    def violations(self) -> list[ChaosOutcome]:
        return [o for o in self.outcomes if o.violates_invariant]

    def as_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "runs": self.runs,
                "nproc": self.nproc, "counts": self.counts,
                "faults_injected": self.faults_injected,
                "violations": [o.as_dict() for o in self.violations],
                "outcomes": [o.as_dict() for o in self.outcomes]}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def render_report(report: ChaosReport) -> str:
    lines = [f"chaos sweep: {report.runs} run(s), seed {report.seed}, "
             f"nproc {report.nproc}",
             f"faults injected: {report.faults_injected}"]
    for status, count in report.counts.items():
        marker = "!!" if status in INVARIANT_VIOLATIONS else "ok"
        lines.append(f"  [{marker}] {status:<15} {count}")
    if report.violations:
        lines.append("invariant violations:")
        for outcome in report.violations:
            lines.append("  " + outcome.describe().replace("\n", "\n  "))
            lines.append(f"    replay: force chaos --seed {outcome.seed}"
                         f" --runs 1 {outcome.program}")
    else:
        lines.append("invariant held: every run terminated with a "
                     "correct result or a structured error")
    return "\n".join(lines)


def write_failure_artifacts(directory: str, outcome: ChaosOutcome,
                            force: Force) -> list[str]:
    """Dump the failing plan + trace for offline replay/triage."""
    os.makedirs(directory, exist_ok=True)
    stem = os.path.join(
        directory, f"{outcome.program}-seed{outcome.seed}")
    written = []
    if outcome.plan is not None:
        plan_path = stem + ".plan.json"
        with open(plan_path, "w", encoding="utf-8") as handle:
            handle.write(outcome.plan.to_json() + "\n")
        written.append(plan_path)
    events = force.trace_events() if force.trace_enabled else []
    if events:
        trace_path = stem + ".trace.json"
        write_trace_file(trace_path, events)
        written.append(trace_path)
    outcome_path = stem + ".outcome.json"
    with open(outcome_path, "w", encoding="utf-8") as handle:
        json.dump(outcome.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    written.append(outcome_path)
    return written


def chaos_sweep(*, seed: int, runs: int,
                programs: list[str] | None = None,
                nproc: int = 4,
                deadline: float = 10.0,
                construct_timeout: float = 2.0,
                barrier_algorithm: str = "central-counter",
                max_faults: int = 3,
                artifacts_dir: str | None = None,
                progress=None) -> ChaosReport:
    """Run ``runs`` seeded fault plans across the corpus.

    Run *i* uses seed ``seed + i`` and corpus program ``i mod len``;
    the whole sweep is a pure function of its arguments, so re-running
    it (or any single seed) replays identical fault sequences.
    """
    names = programs or list(CORPUS)
    unknown = [name for name in names if name not in CORPUS]
    if unknown:
        raise ForceError(
            f"unknown chaos program(s) {', '.join(unknown)}; corpus: "
            f"{', '.join(CORPUS)}")
    if runs < 1:
        raise ForceError("chaos sweep needs at least one run")
    outcomes = []
    for index in range(runs):
        entry = CORPUS[names[index % len(names)]]
        plan = random_plan(seed + index, nproc=nproc,
                           max_faults=max_faults,
                           sites=sites_for(entry))
        outcome, force = run_one(
            entry, plan, nproc=nproc, deadline=deadline,
            construct_timeout=construct_timeout,
            barrier_algorithm=barrier_algorithm)
        outcomes.append(outcome)
        if outcome.violates_invariant and artifacts_dir:
            write_failure_artifacts(artifacts_dir, outcome, force)
        if progress is not None:
            progress(outcome)
    return ChaosReport(seed=seed, runs=runs, nproc=nproc,
                       outcomes=outcomes)
