"""The chaos harness: seeded fault sweeps over the native corpus.

One chaos *run* executes one corpus program under one
:class:`~repro.faults.plan.FaultPlan` and classifies the outcome.  The
harness asserts the robustness invariant this subsystem exists for:

    Under any injected fault plan, a run terminates within its
    deadline with either a *correct result* or a *structured error
    naming the faulted process/construct* — never a hang, never
    silent corruption.

Outcome classes
---------------

Invariant-satisfying:

``ok``
    The force completed and the program's result oracle passed.
``recovered``
    (Supervised runs only.)  At least one attempt failed transiently,
    and the supervisor's retry — resumed from the newest barrier-epoch
    checkpoint, possibly at reduced nproc — completed with the oracle
    passing AND the final shared state **bit-identical** to a
    fault-free run of the same program (the differential state-digest
    oracle).  This is the self-healing invariant of PR 9.
``injected-error``
    The run failed with the injected :class:`InjectedFault` itself
    (fail-fast poisoning worked).
``worker-died``
    An injected death was detected and reported as
    :class:`~repro._util.errors.ForceWorkerDied` naming the process.
``deadlock``
    A stranded construct was reported as
    :class:`~repro._util.errors.ForceDeadlockError` naming it.

Invariant violations:

``corrupt``
    The force *completed* but the oracle failed — silent corruption.
``program-error``
    An unexpected error not traceable to the injection (the corpus
    programs are correct, so this is a runtime bug).
``hang``
    The run exceeded its wall budget (``deadline`` + grace) — even if
    it eventually returned, the no-hang guarantee was broken.

A sweep iterates ``runs`` seeds (``seed0 + i``), derives one
:func:`~repro.faults.plan.random_plan` per seed, and cycles through
the corpus; the same ``(seed0, runs, nproc)`` always replays the same
plans, so any failing seed reproduces its fault sequence exactly.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from time import monotonic
from typing import Any

from repro.bench import git_revision
from repro.faults.corpus import CORPUS, ChaosCheckError, ChaosProgram
from repro.faults.injector import InjectedFault
from repro.faults.plan import FaultPlan, random_plan
from repro.runtime.checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    state_digest,
)
from repro.runtime.force import Force, ForceProgramError
from repro.runtime.supervisor import RetryPolicy, SupervisedRun
from repro._util.errors import (
    ForceDeadlockError,
    ForceError,
    ForceWorkerDied,
)
from repro.trace.export import write_trace_file

#: outcome classes that satisfy the chaos invariant
INVARIANT_OK = ("ok", "recovered", "injected-error", "worker-died",
                "deadlock")

#: outcome classes that violate it
INVARIANT_VIOLATIONS = ("corrupt", "program-error", "hang")

#: extra wall-clock slack beyond the join deadline before a run counts
#: as a hang (join + construct teardown + interpreter overhead)
HANG_GRACE = 5.0

#: construct family (ChaosProgram.exercises) -> injection sites the
#: family actually visits; targeting plans at these keeps the sweep's
#: fault hit rate high instead of scheduling faults at sites a
#: program never reaches
_FAMILY_SITES: dict[str, tuple[str, ...]] = {
    "barrier": ("barrier.entry", "barrier.episode"),
    "barrier-section": ("barrier.entry",),
    "critical": ("critical.acquire", "critical.hold"),
    "selfsched": ("selfsched.chunk",),
    "askfor": ("askfor.put", "askfor.got"),
    "asyncvar": ("asyncvar.produce", "asyncvar.consume"),
}


def sites_for(entry: ChaosProgram) -> tuple[str, ...]:
    """The injection sites a corpus program can actually reach."""
    sites: list[str] = []
    for family in entry.exercises:
        for site in _FAMILY_SITES.get(family, ()):
            if site not in sites:
                sites.append(site)
    return tuple(sites) or ("barrier.entry",)


@dataclass
class ChaosOutcome:
    """One classified chaos run."""

    program: str
    seed: int
    status: str
    elapsed: float
    error: str = ""
    injected: list[str] = field(default_factory=list)
    plan: FaultPlan | None = None
    #: the exact run configuration (nproc, timeouts, backend,
    #: supervision knobs) — what :func:`replay_command` rebuilds the
    #: command line from, and what makes artifact counts reproduce
    #: across hosts
    config: dict[str, Any] = field(default_factory=dict)
    #: sha256 of the final shared state (set when it was readable)
    state_digest: str = ""
    #: the fault-free run's digest (supervised runs only)
    oracle_digest: str = ""
    #: the supervisor's attempt-by-attempt report (supervised only)
    supervision: dict[str, Any] | None = None

    @property
    def violates_invariant(self) -> bool:
        return self.status in INVARIANT_VIOLATIONS

    def describe(self) -> str:
        text = (f"{self.program} seed={self.seed}: {self.status} "
                f"({self.elapsed:.2f}s, "
                f"{len(self.injected)} fault(s) injected)")
        if self.supervision is not None:
            text += (f"\n    supervised: {self.supervision['retries']} "
                     f"retr{'y' if self.supervision['retries'] == 1 else 'ies'}, "
                     f"{self.supervision['recoveries']} resume(s), "
                     f"{self.supervision['degraded_restarts']} degraded, "
                     f"final nproc {self.supervision['final_nproc']}")
        if self.error:
            text += f"\n    {self.error}"
        for fired in self.injected:
            text += f"\n    injected: {fired}"
        return text

    def as_dict(self) -> dict[str, Any]:
        return {"program": self.program, "seed": self.seed,
                "status": self.status,
                "elapsed": round(self.elapsed, 4),
                "error": self.error, "injected": list(self.injected),
                "plan": self.plan.as_dict() if self.plan else None,
                "config": dict(self.config),
                "state_digest": self.state_digest,
                "oracle_digest": self.oracle_digest,
                "supervision": self.supervision}


def _classify_failure(exc: ForceError) -> tuple[str, str]:
    """Map a Force.run failure to (status, message)."""
    if isinstance(exc, ForceWorkerDied):
        return "worker-died", str(exc)
    if isinstance(exc, ForceDeadlockError):
        return "deadlock", str(exc)
    if isinstance(exc, ForceProgramError):
        if isinstance(exc.original, InjectedFault):
            return "injected-error", str(exc)
        return "program-error", str(exc)
    return "program-error", str(exc)


#: an every-n too large to ever fire — arms the process backend's
#: final-state capture (readable post-run) without writing snapshots
_CAPTURE_ONLY_EVERY_N = 10 ** 9


def final_state(force: Force) -> dict[str, Any] | None:
    """The run's final shared-state snapshot document, or ``None``
    when it is not capturable (process-backend run that failed, or
    never armed capture)."""
    try:
        return force.capture_state()
    except CheckpointError:
        return None


def _result_view(force: Force, doc: dict[str, Any] | None) -> Force:
    """A force whose shared state is readable for the result oracle.

    The thread backend keeps shared objects on the heap, so the force
    itself is the view.  The process backend tears its arena down
    inside ``run()``; checks there read a re-materialized
    thread-backend view of the captured final state.
    """
    if force.backend == "thread":
        return force
    if doc is None:
        raise ForceError(
            "process-backend final state was not captured; cannot "
            "run the result oracle")
    return Force(force.nproc, restore=doc)


def _run_config(*, nproc: int, deadline: float, construct_timeout: float,
                barrier_algorithm: str, backend: str,
                max_faults: int | None = None,
                fault_kinds: tuple[str, ...] | None = None,
                supervised: bool = False,
                min_nproc: int | None = None,
                retries: int | None = None) -> dict[str, Any]:
    """The exact-replay configuration recorded on every outcome.

    Everything that shapes either the derived fault plan or the run's
    classification goes in here — most importantly the pinned
    ``construct_timeout``, whose host-dependent default used to make
    sweep counts flap between machines.
    """
    config: dict[str, Any] = {
        "nproc": nproc,
        "deadline": deadline,
        "construct_timeout": construct_timeout,
        "barrier_algorithm": barrier_algorithm,
        "backend": backend,
        "supervised": supervised,
    }
    if max_faults is not None:
        config["max_faults"] = max_faults
    if fault_kinds:
        config["fault_kinds"] = list(fault_kinds)
    if supervised:
        config["min_nproc"] = min_nproc
        config["retries"] = retries
    return config


def replay_command(outcome: ChaosOutcome) -> str:
    """The exact ``force chaos`` command line that replays a run.

    Built from the outcome's recorded config, so a failure artifact is
    reproducible on any host without guessing defaults.
    """
    config = outcome.config
    parts = ["force", "chaos", "--seed", str(outcome.seed),
             "--runs", "1"]
    if config.get("nproc"):
        parts += ["--nproc", str(config["nproc"])]
    if config.get("deadline") is not None:
        parts += ["--deadline", format(config["deadline"], "g")]
    if config.get("construct_timeout") is not None:
        parts += ["--construct-timeout",
                  format(config["construct_timeout"], "g")]
    if config.get("barrier_algorithm"):
        parts += ["--barrier", config["barrier_algorithm"]]
    if config.get("backend", "thread") != "thread":
        parts += ["--backend", config["backend"]]
    if config.get("max_faults") is not None:
        parts += ["--max-faults", str(config["max_faults"])]
    if config.get("fault_kinds"):
        parts += ["--fault-kinds", ",".join(config["fault_kinds"])]
    if config.get("supervised"):
        parts.append("--supervise")
        if config.get("min_nproc"):
            parts += ["--min-nproc", str(config["min_nproc"])]
        if config.get("retries") is not None:
            parts += ["--retries", str(config["retries"])]
    parts.append(outcome.program)
    return " ".join(parts)


def run_one(entry: ChaosProgram, plan: FaultPlan, *,
            nproc: int | None = None,
            deadline: float = 10.0,
            construct_timeout: float = 2.0,
            barrier_algorithm: str = "central-counter",
            backend: str = "thread",
            trace: bool = True,
            config: dict[str, Any] | None = None) -> tuple[ChaosOutcome,
                                                           Force]:
    """Execute one corpus program under one fault plan and classify.

    Returns the outcome *and* the force, so callers can pull trace
    events for failure artifacts.
    """
    width = nproc or entry.nproc
    capture_dir = None
    checkpoint = None
    if backend == "process":
        # Capture-only policy: never snapshots, but makes the final
        # state readable after the arena is torn down.
        capture_dir = tempfile.mkdtemp(prefix="force-chaos-")
        checkpoint = CheckpointPolicy(_CAPTURE_ONLY_EVERY_N, capture_dir)
    force = Force(width, timeout=deadline,
                  construct_timeout=construct_timeout,
                  barrier_algorithm=barrier_algorithm,
                  trace=trace, inject=plan, backend=backend,
                  checkpoint=checkpoint)
    start = monotonic()
    status, error, digest = "ok", "", ""
    try:
        try:
            force.run(entry.program)
        except ForceError as exc:
            status, error = _classify_failure(exc)
        else:
            doc = final_state(force)
            if doc is not None:
                digest = state_digest(doc)
            try:
                entry.check(_result_view(force, doc))
            except ChaosCheckError as exc:
                status, error = "corrupt", str(exc)
    finally:
        if capture_dir is not None:
            shutil.rmtree(capture_dir, ignore_errors=True)
    elapsed = monotonic() - start
    if elapsed > deadline + HANG_GRACE:
        # It returned eventually, but way past its budget: the no-hang
        # guarantee is already broken.
        status = "hang"
        error = (f"run took {elapsed:.1f}s against a {deadline:.1f}s "
                 f"deadline (+{HANG_GRACE:.0f}s grace)" +
                 (f"; underlying: {error}" if error else ""))
    injected = [record.describe()
                for record in (force.injected_faults() or [])]
    outcome = ChaosOutcome(
        program=entry.name, seed=plan.seed, status=status,
        elapsed=elapsed, error=error, injected=injected, plan=plan,
        state_digest=digest,
        config=config or _run_config(
            nproc=width, deadline=deadline,
            construct_timeout=construct_timeout,
            barrier_algorithm=barrier_algorithm, backend=backend))
    return outcome, force


def oracle_digest(entry: ChaosProgram, *,
                  nproc: int | None = None,
                  deadline: float = 10.0,
                  construct_timeout: float = 2.0,
                  barrier_algorithm: str = "central-counter",
                  backend: str = "thread") -> str:
    """Digest of the program's fault-free final shared state.

    This is the reference side of the differential oracle: a
    supervised run that reports ``recovered`` must match it bit for
    bit.  Digests are backend-specific (the process backend stores
    scalars as float64 cells), so compare like with like.
    """
    width = nproc or entry.nproc
    capture_dir = tempfile.mkdtemp(prefix="force-oracle-")
    try:
        force = Force(width, timeout=deadline,
                      construct_timeout=construct_timeout,
                      barrier_algorithm=barrier_algorithm,
                      trace=False, backend=backend,
                      checkpoint=CheckpointPolicy(_CAPTURE_ONLY_EVERY_N,
                                                  capture_dir))
        force.run(entry.program)
        doc = force.capture_state()
        entry.check(_result_view(force, doc))
        return state_digest(doc)
    finally:
        shutil.rmtree(capture_dir, ignore_errors=True)


def run_supervised(entry: ChaosProgram, plan: FaultPlan, *,
                   nproc: int | None = None,
                   min_nproc: int | None = None,
                   deadline: float = 10.0,
                   construct_timeout: float = 2.0,
                   barrier_algorithm: str = "central-counter",
                   backend: str = "thread",
                   trace: bool = True,
                   checkpoint_dir: str | None = None,
                   every_n_barriers: int = 1,
                   retry: RetryPolicy | None = None,
                   oracle: str | None = None,
                   config: dict[str, Any] | None = None,
                   ) -> tuple[ChaosOutcome, Force | None]:
    """One corpus program under supervision: die, recover, compare.

    The run executes under a :class:`SupervisedRun` with barrier-epoch
    checkpointing armed; a transiently failed attempt is retried from
    the newest snapshot (elastically, down to ``min_nproc``).  Success
    after at least one retry classifies as ``recovered`` — but only if
    the result oracle passes AND the final shared state's digest
    equals the fault-free ``oracle`` digest (computed here when not
    supplied).  Any divergence is ``corrupt``: recovery that changes
    the answer is corruption with extra steps.
    """
    width = nproc or entry.nproc
    if oracle is None:
        oracle = oracle_digest(
            entry, nproc=width, deadline=deadline,
            construct_timeout=construct_timeout,
            barrier_algorithm=barrier_algorithm, backend=backend)
    temp_dir = None
    if checkpoint_dir is None:
        checkpoint_dir = temp_dir = tempfile.mkdtemp(prefix="force-ckpt-")
    retry = retry or RetryPolicy(seed=plan.seed)
    supervised = SupervisedRun(
        entry.program, nproc=width, backend=backend,
        checkpoint=CheckpointPolicy(every_n_barriers, checkpoint_dir),
        min_nproc=min_nproc, retry=retry, inject=plan,
        timeout=deadline, construct_timeout=construct_timeout,
        barrier_algorithm=barrier_algorithm, trace=trace)
    start = monotonic()
    status, error, digest = "ok", "", ""
    force: Force | None = None
    supervision: dict[str, Any] | None = None
    try:
        try:
            result = supervised.run()
        except ForceError as exc:
            status, error = _classify_failure(exc)
        else:
            status = "recovered" if result.retries else "ok"
            force = result.force
            doc = final_state(force) if force is not None else None
            if doc is not None:
                digest = state_digest(doc)
            try:
                entry.check(_result_view(force, doc))
            except ChaosCheckError as exc:
                status, error = "corrupt", str(exc)
            else:
                if digest != oracle:
                    status = "corrupt"
                    error = (
                        f"final state digest {digest[:12]} differs "
                        f"from the fault-free oracle {oracle[:12]}: "
                        "the recovered run silently diverged")
        finally:
            if supervised.last_result is not None:
                supervision = supervised.last_result.as_dict()
                if force is None:
                    force = supervised.last_result.force
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)
    elapsed = monotonic() - start
    attempts = len(supervision["attempts"]) if supervision else 1
    backoffs = sum(a["backoff"] for a in supervision["attempts"]) \
        if supervision else 0.0
    budget = deadline * attempts + backoffs
    if elapsed > budget + HANG_GRACE:
        status = "hang"
        error = (f"supervised run took {elapsed:.1f}s against a "
                 f"{budget:.1f}s budget ({attempts} attempt(s) "
                 f"+{HANG_GRACE:.0f}s grace)" +
                 (f"; underlying: {error}" if error else ""))
    injected = [record.describe() for record in supervised.fired]
    outcome = ChaosOutcome(
        program=entry.name, seed=plan.seed, status=status,
        elapsed=elapsed, error=error, injected=injected, plan=plan,
        state_digest=digest, oracle_digest=oracle,
        supervision=supervision,
        config=config or _run_config(
            nproc=width, deadline=deadline,
            construct_timeout=construct_timeout,
            barrier_algorithm=barrier_algorithm, backend=backend,
            supervised=True, min_nproc=min_nproc,
            retries=retry.retries))
    return outcome, force


@dataclass
class ChaosReport:
    """Aggregate of one sweep, with its full pinned configuration.

    Recording the configuration (most importantly the explicit
    ``construct_timeout``) is what makes outcome counts reproduce
    across hosts: two machines running the same seed with the same
    recorded config classify identically.
    """

    seed: int
    runs: int
    nproc: int
    outcomes: list[ChaosOutcome]
    deadline: float = 10.0
    construct_timeout: float = 2.0
    barrier_algorithm: str = "central-counter"
    backend: str = "thread"
    supervised: bool = False
    min_nproc: int | None = None
    fault_kinds: tuple[str, ...] | None = None
    max_faults: int | None = None

    @property
    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return dict(sorted(tally.items()))

    @property
    def faults_injected(self) -> int:
        return sum(len(outcome.injected) for outcome in self.outcomes)

    @property
    def violations(self) -> list[ChaosOutcome]:
        return [o for o in self.outcomes if o.violates_invariant]

    @property
    def config(self) -> dict[str, Any]:
        return {"deadline": self.deadline,
                "construct_timeout": self.construct_timeout,
                "barrier_algorithm": self.barrier_algorithm,
                "backend": self.backend,
                "supervised": self.supervised,
                "min_nproc": self.min_nproc,
                "fault_kinds": list(self.fault_kinds)
                if self.fault_kinds else None,
                "max_faults": self.max_faults}

    def as_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "runs": self.runs,
                "nproc": self.nproc, "counts": self.counts,
                "config": self.config,
                "faults_injected": self.faults_injected,
                "violations": [o.as_dict() for o in self.violations],
                "outcomes": [o.as_dict() for o in self.outcomes]}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def render_report(report: ChaosReport) -> str:
    lines = [f"chaos sweep: {report.runs} run(s), seed {report.seed}, "
             f"nproc {report.nproc}",
             f"config: backend={report.backend} "
             f"construct-timeout={report.construct_timeout:g}s "
             f"deadline={report.deadline:g}s "
             f"barrier={report.barrier_algorithm}"
             + (f" supervised(min-nproc={report.min_nproc})"
                if report.supervised else ""),
             f"faults injected: {report.faults_injected}"]
    for status, count in report.counts.items():
        marker = "!!" if status in INVARIANT_VIOLATIONS else "ok"
        lines.append(f"  [{marker}] {status:<15} {count}")
    if report.violations:
        lines.append("invariant violations:")
        for outcome in report.violations:
            lines.append("  " + outcome.describe().replace("\n", "\n  "))
            lines.append(f"    replay: {replay_command(outcome)}")
    else:
        lines.append("invariant held: every run terminated with a "
                     "correct result or a structured error")
    return "\n".join(lines)


def write_failure_artifacts(directory: str, outcome: ChaosOutcome,
                            force: Force | None) -> list[str]:
    """Dump the failing plan + trace for offline replay/triage.

    The outcome document carries the repository revision (``null``
    outside a usable checkout, same degrade rule as ``force bench``)
    and the exact replay command line, so a failure artifact from any
    host is actionable as-is.
    """
    os.makedirs(directory, exist_ok=True)
    stem = os.path.join(
        directory, f"{outcome.program}-seed{outcome.seed}")
    written = []
    if outcome.plan is not None:
        plan_path = stem + ".plan.json"
        with open(plan_path, "w", encoding="utf-8") as handle:
            handle.write(outcome.plan.to_json() + "\n")
        written.append(plan_path)
    events = force.trace_events() \
        if force is not None and force.trace_enabled else []
    if events:
        trace_path = stem + ".trace.json"
        write_trace_file(trace_path, events)
        written.append(trace_path)
    document = outcome.as_dict()
    document["git_revision"] = git_revision()
    document["replay"] = replay_command(outcome)
    outcome_path = stem + ".outcome.json"
    with open(outcome_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    written.append(outcome_path)
    return written


def chaos_sweep(*, seed: int, runs: int,
                programs: list[str] | None = None,
                nproc: int = 4,
                deadline: float = 10.0,
                construct_timeout: float = 2.0,
                barrier_algorithm: str = "central-counter",
                max_faults: int = 3,
                artifacts_dir: str | None = None,
                progress=None,
                backend: str = "thread",
                fault_kinds: tuple[str, ...] | None = None,
                supervise: bool = False,
                min_nproc: int | None = None,
                retries: int = 3,
                degrade_after: int = 2,
                checkpoint_root: str | None = None) -> ChaosReport:
    """Run ``runs`` seeded fault plans across the corpus.

    Run *i* uses seed ``seed + i`` and corpus program ``i mod len``;
    the whole sweep is a pure function of its arguments — including
    the explicitly pinned ``construct_timeout`` recorded in the report
    — so re-running it (or any single seed) replays identical fault
    sequences and identical classifications on any host.

    ``fault_kinds`` narrows the drawn kinds (``("die",)`` for a
    recovery sweep).  ``supervise=True`` turns the sweep into the
    recovery differential oracle: each run executes under a
    :class:`~repro.runtime.supervisor.SupervisedRun` with barrier-epoch
    checkpointing (snapshots under ``checkpoint_root``, or a temp dir
    per run), retried faults must *recover* — oracle-passing, digest
    bit-identical to a fault-free run — and ``min_nproc`` below nproc
    additionally exercises elastic restart at reduced width.
    """
    names = programs or list(CORPUS)
    unknown = [name for name in names if name not in CORPUS]
    if unknown:
        raise ForceError(
            f"unknown chaos program(s) {', '.join(unknown)}; corpus: "
            f"{', '.join(CORPUS)}")
    if runs < 1:
        raise ForceError("chaos sweep needs at least one run")
    outcomes = []
    oracles: dict[str, str] = {}
    for index in range(runs):
        entry = CORPUS[names[index % len(names)]]
        plan = random_plan(seed + index, nproc=nproc,
                           max_faults=max_faults,
                           sites=sites_for(entry),
                           kinds=fault_kinds)
        config = _run_config(
            nproc=nproc, deadline=deadline,
            construct_timeout=construct_timeout,
            barrier_algorithm=barrier_algorithm, backend=backend,
            max_faults=max_faults, fault_kinds=fault_kinds,
            supervised=supervise, min_nproc=min_nproc,
            retries=retries if supervise else None)
        if supervise:
            if entry.name not in oracles:
                oracles[entry.name] = oracle_digest(
                    entry, nproc=nproc, deadline=deadline,
                    construct_timeout=construct_timeout,
                    barrier_algorithm=barrier_algorithm,
                    backend=backend)
            checkpoint_dir = None
            if checkpoint_root:
                checkpoint_dir = os.path.join(
                    checkpoint_root, f"{entry.name}-seed{plan.seed}")
            outcome, force = run_supervised(
                entry, plan, nproc=nproc, min_nproc=min_nproc,
                deadline=deadline, construct_timeout=construct_timeout,
                barrier_algorithm=barrier_algorithm, backend=backend,
                checkpoint_dir=checkpoint_dir,
                retry=RetryPolicy(retries=retries,
                                  degrade_after=degrade_after,
                                  seed=plan.seed),
                oracle=oracles[entry.name], config=config)
        else:
            outcome, force = run_one(
                entry, plan, nproc=nproc, deadline=deadline,
                construct_timeout=construct_timeout,
                barrier_algorithm=barrier_algorithm, backend=backend,
                config=config)
        outcomes.append(outcome)
        if outcome.violates_invariant and artifacts_dir:
            write_failure_artifacts(artifacts_dir, outcome, force)
        if progress is not None:
            progress(outcome)
    return ChaosReport(seed=seed, runs=runs, nproc=nproc,
                       outcomes=outcomes, deadline=deadline,
                       construct_timeout=construct_timeout,
                       barrier_algorithm=barrier_algorithm,
                       backend=backend, supervised=supervise,
                       min_nproc=min_nproc, fault_kinds=fault_kinds,
                       max_faults=max_faults)
