"""Runtime instrumentation for the native Force (opt-in).

``Force(nproc, stats=True)`` threads a :class:`ForceStats` collector
through the same interception points the cancellation layer uses, in
the spirit of the barrier/lock cost methodology of Mellor-Crummey &
Scott: per-construct counters and wait-time accumulators —

* barrier episodes completed, per-process wait times and their spread;
* critical-section acquisitions and contention per section name;
* selfscheduled chunks dispatched per loop label;
* Askfor pool traffic (``total_put``/``total_got``/max queue depth);
* asynchronous-variable blocked events and blocked time per name.

The collector is a plain dict away (:meth:`ForceStats.as_dict`) and
rendered by :func:`render_stats`, which the ``force run --stats`` CLI
shares with compiled-program simulation statistics so both execution
paths report through one format.
"""

from __future__ import annotations

import threading
from typing import Any


class WaitStat:
    """Count / total / min / max of wait durations (seconds)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def merge(self, other: "WaitStat") -> None:
        """Fold another collector's stat into this one.

        An empty ``other`` (``count == 0``) contributes nothing — its
        sentinel ``min`` of +inf and ``max`` of 0.0 must not leak into
        the merged extremes.
        """
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def as_dict(self) -> dict[str, float]:
        # count == 0 (never recorded, or merged only from empty
        # collectors) reports zeros, never the +inf min sentinel.
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.total / self.count if self.count else 0.0,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max if self.count else 0.0,
            "spread_s": (self.max - self.min) if self.count else 0.0,
        }

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "WaitStat":
        stat = cls()
        stat.count = int(data.get("count", 0))
        stat.total = float(data.get("total_s", 0.0))
        if stat.count:
            stat.min = float(data.get("min_s", 0.0))
            stat.max = float(data.get("max_s", 0.0))
        return stat


class ForceStats:
    """Per-construct counters for one :class:`Force`.

    All record methods are thread-safe; the runtime only calls them
    when stats collection is enabled, so the ``stats=False`` path pays
    a single ``is None`` test per interception point.
    """

    def __init__(self, nproc: int) -> None:
        self.nproc = nproc
        self._lock = threading.Lock()
        self.barrier_episodes = 0
        self.barrier_wait = WaitStat()
        self.criticals: dict[str, dict[str, Any]] = {}
        self.selfsched_chunks: dict[str, dict[str, int]] = {}
        self.askfor: dict[str, dict[str, int]] = {}
        self.asyncvar: dict[str, WaitStat] = {}

    # -- barriers ------------------------------------------------------
    def record_barrier_wait(self, seconds: float) -> None:
        with self._lock:
            self.barrier_wait.record(seconds)

    def record_barrier_episode(self) -> None:
        with self._lock:
            self.barrier_episodes += 1

    # -- critical sections ---------------------------------------------
    def record_critical(self, name: str, waited: float,
                        contended: bool) -> None:
        with self._lock:
            entry = self.criticals.get(name)
            if entry is None:
                entry = {"acquisitions": 0, "contended": 0,
                         "wait": WaitStat()}
                self.criticals[name] = entry
            entry["acquisitions"] += 1
            if contended:
                entry["contended"] += 1
                entry["wait"].record(waited)

    # -- selfscheduled loops -------------------------------------------
    def record_selfsched_chunk(self, label: str, size: int = 1) -> None:
        """One chunk dispatch of ``size`` indices.

        A chunk costs one critical-section acquisition regardless of
        its size, so ``chunks`` counts lock traffic while ``indices``
        counts work handed out — the ratio is the dispatch granularity.
        """
        with self._lock:
            entry = self.selfsched_chunks.get(label)
            if entry is None:
                entry = {"chunks": 0, "indices": 0, "max_chunk": 0}
                self.selfsched_chunks[label] = entry
            entry["chunks"] += 1
            entry["indices"] += size
            if size > entry["max_chunk"]:
                entry["max_chunk"] = size

    # -- askfor pools --------------------------------------------------
    def record_askfor(self, name: str, *, total_put: int, total_got: int,
                      max_depth: int) -> None:
        with self._lock:
            self.askfor[name] = {"total_put": total_put,
                                 "total_got": total_got,
                                 "max_depth": max_depth}

    # -- asynchronous variables ----------------------------------------
    def record_asyncvar_block(self, name: str, seconds: float) -> None:
        with self._lock:
            stat = self.asyncvar.get(name)
            if stat is None:
                stat = WaitStat()
                self.asyncvar[name] = stat
            stat.record(seconds)

    # -- pickling ------------------------------------------------------
    # The process backend ships each worker's collector back to the
    # parent for merging; a threading.Lock cannot cross that boundary.
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ForceStats":
        """Rebuild a collector from :meth:`as_dict` output."""
        stats = cls(int(data.get("nproc", 1)))
        barriers = data.get("barriers") or {}
        stats.barrier_episodes = int(barriers.get("episodes", 0))
        if barriers.get("wait"):
            stats.barrier_wait = WaitStat.from_dict(barriers["wait"])
        for name, entry in (data.get("criticals") or {}).items():
            stats.criticals[name] = {
                "acquisitions": int(entry["acquisitions"]),
                "contended": int(entry["contended"]),
                "wait": WaitStat.from_dict(entry["wait"]),
            }
        for label, entry in (data.get("selfsched") or {}).items():
            stats.selfsched_chunks[label] = dict(entry)
        for name, entry in (data.get("askfor") or {}).items():
            stats.askfor[name] = dict(entry)
        for name, entry in (data.get("asyncvar") or {}).items():
            stats.asyncvar[name] = WaitStat.from_dict(entry)
        return stats

    # -- merging -------------------------------------------------------
    def merge(self, other: "ForceStats") -> None:
        """Fold another collector into this one (multi-run reports).

        Wait statistics merge through :meth:`WaitStat.merge`, so empty
        sections on either side never poison min/max extremes.
        """
        with self._lock:
            self.barrier_episodes += other.barrier_episodes
            self.barrier_wait.merge(other.barrier_wait)
            for name, entry in other.criticals.items():
                mine = self.criticals.get(name)
                if mine is None:
                    mine = {"acquisitions": 0, "contended": 0,
                            "wait": WaitStat()}
                    self.criticals[name] = mine
                mine["acquisitions"] += entry["acquisitions"]
                mine["contended"] += entry["contended"]
                mine["wait"].merge(entry["wait"])
            for label, entry in other.selfsched_chunks.items():
                mine = self.selfsched_chunks.get(label)
                if mine is None:
                    mine = {"chunks": 0, "indices": 0, "max_chunk": 0}
                    self.selfsched_chunks[label] = mine
                mine["chunks"] += entry["chunks"]
                mine["indices"] += entry["indices"]
                mine["max_chunk"] = max(mine["max_chunk"],
                                        entry["max_chunk"])
            for name, entry in other.askfor.items():
                mine = self.askfor.get(name)
                if mine is None:
                    self.askfor[name] = dict(entry)
                else:
                    mine["total_put"] += entry["total_put"]
                    mine["total_got"] += entry["total_got"]
                    mine["max_depth"] = max(mine["max_depth"],
                                            entry["max_depth"])
            for name, stat in other.asyncvar.items():
                mine = self.asyncvar.get(name)
                if mine is None:
                    mine = WaitStat()
                    self.asyncvar[name] = mine
                mine.merge(stat)

    # -- export --------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "nproc": self.nproc,
                "barriers": {
                    "episodes": self.barrier_episodes,
                    "wait": self.barrier_wait.as_dict(),
                },
                "criticals": {
                    name: {
                        "acquisitions": entry["acquisitions"],
                        "contended": entry["contended"],
                        "wait": entry["wait"].as_dict(),
                    }
                    for name, entry in sorted(self.criticals.items())
                },
                "selfsched": {label: dict(entry)
                              for label, entry in
                              sorted(self.selfsched_chunks.items())},
                "askfor": {name: dict(v)
                           for name, v in sorted(self.askfor.items())},
                "asyncvar": {name: stat.as_dict()
                             for name, stat in
                             sorted(self.asyncvar.items())},
            }

    def render(self) -> str:
        return render_stats(self.as_dict())


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def render_stats(stats: dict[str, Any]) -> str:
    """Render a stats dict (native runtime and/or simulator sections).

    Understands the native sections produced by
    :meth:`ForceStats.as_dict` and a ``sim`` section produced by the
    pipeline (see :func:`repro.pipeline.run.sim_stats_dict`); unknown
    or absent sections are simply skipped, so both execution paths
    share this one renderer.
    """
    lines: list[str] = []

    sim = stats.get("sim")
    if sim:
        lines.append("--- simulation ---")
        lines.append(f"machine:             {sim['machine']}")
        lines.append(f"processes:           {sim['processes']}")
        lines.append(f"makespan:            {sim['makespan']} cycles")
        lines.append(f"utilization:         {sim['utilization']:.2%}")
        lines.append(f"lock acquisitions:   {sim['lock_acquisitions']} "
                     f"({sim['contended_acquisitions']} contended)")
        lines.append(f"spin cycles:         {sim['spin_cycles']}")
        lines.append(f"context switches:    {sim['context_switches']}")

    native = stats.get("native")
    if native:
        lines.append("--- native execution ---")
        lines.append(f"backend:             {native['backend']}")
        lines.append(f"processes:           {native['nproc']}")
        if native.get("wall_s") is not None:
            lines.append(f"wall clock:          "
                         f"{_fmt_s(native['wall_s'])}")

    barriers = stats.get("barriers")
    if barriers and barriers["wait"]["count"]:
        wait = barriers["wait"]
        lines.append("--- barriers ---")
        lines.append(f"episodes:            {barriers['episodes']}")
        lines.append(f"waits:               {wait['count']} "
                     f"(mean {_fmt_s(wait['mean_s'])}, "
                     f"max {_fmt_s(wait['max_s'])}, "
                     f"spread {_fmt_s(wait['spread_s'])})")

    # Per-name sections are sorted here, not only in as_dict(): a
    # stats dict merged from several collectors (or loaded back from
    # JSON) renders in the same stable order regardless of insertion.
    criticals = stats.get("criticals")
    if criticals:
        lines.append("--- critical sections ---")
        for name, entry in sorted(criticals.items()):
            wait = entry["wait"]
            lines.append(
                f"{name:18s} {entry['acquisitions']:>8d} acq, "
                f"{entry['contended']:>6d} contended, "
                f"waited {_fmt_s(wait['total_s'])}")

    selfsched = stats.get("selfsched")
    if selfsched:
        lines.append("--- selfscheduled loops ---")
        for label, entry in sorted(selfsched.items()):
            if isinstance(entry, int):
                # pre-chunking stats dicts loaded back from JSON
                lines.append(
                    f"{label:18s} {entry:>8d} chunks dispatched")
                continue
            lines.append(
                f"{label:18s} {entry['chunks']:>8d} chunks, "
                f"{entry['indices']:>8d} indices "
                f"(max chunk {entry['max_chunk']})")

    askfor = stats.get("askfor")
    if askfor:
        lines.append("--- askfor pools ---")
        for name, entry in sorted(askfor.items()):
            lines.append(
                f"{name:18s} put {entry['total_put']}, "
                f"got {entry['total_got']}, "
                f"max depth {entry['max_depth']}")

    asyncvar = stats.get("asyncvar")
    if asyncvar:
        lines.append("--- asynchronous variables ---")
        for name, stat in sorted(asyncvar.items()):
            lines.append(
                f"{name:18s} {stat['count']:>8d} blocked waits, "
                f"{_fmt_s(stat['total_s'])} blocked")

    return "\n".join(lines)
