"""A native, thread-based Force runtime for Python programs.

The preprocessor pipeline reproduces the paper's system; this package
makes its *programming model* usable directly from Python: write a
function of ``(force, me)``, run it with N real threads, and use Force
constructs — barriers, critical sections, pre-/self-scheduled DOALLs,
Pcase, Askfor, asynchronous (full/empty) variables, and Resolve (the
paper's "yet unimplemented concept", built here as an extension).

The default ``backend="thread"`` runs under CPython's GIL and
demonstrates *semantics*; ``Force(nproc, backend="process")`` runs the
same program on real OS processes over POSIX shared memory for true
multi-core execution (see :mod:`repro.runtime.procforce`), and
:mod:`repro.sim` covers performance-shaped experiments on the paper's
machines.

Example::

    from repro.runtime import Force

    def program(force, me):
        total = force.shared_counter("total")
        for i in force.selfsched_range(1, 101):
            with force.critical("sum"):
                total.value += i
        force.barrier()
        if me == 1:
            print(total.value)

    Force(nproc=4).run(program)
"""

from repro._util.errors import ForceDeadlockError, ForceWorkerDied
from repro.runtime.barriers import (
    BARRIER_ALGORITHMS,
    CentralCounterBarrier,
    DisseminationBarrier,
    SenseReversingBarrier,
    TournamentBarrier,
    make_barrier,
)
from repro.runtime.asyncvar import AsyncVariable, AsyncArray
from repro.runtime.cancel import CancelToken, ForceCancelled
from repro.runtime.force import Force, ForceProgramError
from repro.runtime.askfor import AskforMonitor
from repro.runtime.procforce import ProcessForce
from repro.runtime.resolve import Resolve
from repro.runtime.stats import ForceStats, render_stats

__all__ = [
    "BARRIER_ALGORITHMS",
    "CentralCounterBarrier",
    "DisseminationBarrier",
    "SenseReversingBarrier",
    "TournamentBarrier",
    "make_barrier",
    "AsyncVariable",
    "AsyncArray",
    "CancelToken",
    "Force",
    "ForceCancelled",
    "ForceDeadlockError",
    "ForceProgramError",
    "ForceWorkerDied",
    "ForceStats",
    "render_stats",
    "AskforMonitor",
    "ProcessForce",
    "Resolve",
]
