"""Fail-fast cancellation for the native Force runtime.

When any process of a force raises, the whole program is dead: every
peer blocked in a barrier episode, an asynchronous-variable wait, an
Askfor ``get`` or a selfscheduled-loop entry/exit would otherwise sit
there until the join timeout expires and the error is misreported as a
deadlock.  A :class:`CancelToken` is the shared poison flag that turns
that hang into prompt propagation: the failing process calls
:meth:`CancelToken.cancel` with the original error, the token wakes
every registered condition variable, and each blocked peer raises
:class:`ForceCancelled` out of its construct.

Constructs that wait on a :class:`threading.Condition` register it with
the token (so cancellation is a ``notify_all``, not a poll); constructs
that wait on :class:`threading.Event` flags or plain locks use the
token's polling helpers with a short poll interval, bounding the
propagation latency without slowing the uncontended fast path.
"""

from __future__ import annotations

import threading
from time import monotonic as _monotonic
from typing import Callable

from repro._util.errors import ForceError

#: poll interval for waits that cannot be woken by ``notify_all``
#: (events, semaphores, plain locks).  Bounds cancellation latency.
POLL_INTERVAL = 0.02


class ForceCancelled(ForceError):
    """The force was poisoned by another process's failure.

    Raised inside blocked constructs so every process unwinds promptly;
    ``Force.run`` filters these and re-raises the *original* failure.
    """

    def __init__(self, error: BaseException | None = None) -> None:
        self.error = error
        detail = f": {error}" if error is not None else ""
        super().__init__(f"force cancelled{detail}")


class CancelToken:
    """Shared poison flag with condition-variable wakeup.

    One token is shared by every construct of one :class:`Force` run.
    ``cancel(error)`` is idempotent: the first error wins and is the
    one re-raised by ``Force.run``.
    """

    __slots__ = ("_lock", "_flag", "_conditions", "error")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flag = threading.Event()
        self._conditions: list[threading.Condition] = []
        self.error: BaseException | None = None

    @property
    def cancelled(self) -> bool:
        return self._flag.is_set()

    def register(self, condition: threading.Condition) -> None:
        """Add a condition to wake with ``notify_all`` on cancellation."""
        with self._lock:
            self._conditions.append(condition)

    def cancel(self, error: BaseException | None = None) -> None:
        """Poison the force; wake every registered waiter."""
        with self._lock:
            if self._flag.is_set():
                return
            self.error = error
            self._flag.set()
            conditions = list(self._conditions)
        for condition in conditions:
            with condition:
                condition.notify_all()

    def check(self) -> None:
        """Raise :class:`ForceCancelled` if the force is poisoned."""
        if self._flag.is_set():
            raise ForceCancelled(self.error)

    # ------------------------------------------------------------------
    # wait helpers
    # ------------------------------------------------------------------
    def wait_for(self, condition: threading.Condition,
                 predicate: Callable[[], bool],
                 timeout: float | None = None) -> bool:
        """Token-aware ``Condition.wait_for`` (condition must be held).

        Returns the predicate result (False only on timeout); raises
        :class:`ForceCancelled` if the token fires while waiting.  The
        condition must have been :meth:`register`-ed so that ``cancel``
        wakes it.
        """
        deadline = None if timeout is None else _monotonic() + timeout
        while True:
            self.check()
            if predicate():
                return True
            if deadline is None:
                condition.wait()
            else:
                remaining = deadline - _monotonic()
                if remaining <= 0:
                    return False
                condition.wait(remaining)

    def wait_event(self, event: threading.Event) -> None:
        """Wait for an event, polling the poison flag in between."""
        while not event.wait(POLL_INTERVAL):
            self.check()

    def acquire(self, lock, timeout: float | None = None) -> bool:
        """Token-aware acquire of a Lock/Semaphore (polling)."""
        deadline = None if timeout is None else _monotonic() + timeout
        while True:
            self.check()
            slice_ = POLL_INTERVAL
            if deadline is not None:
                remaining = deadline - _monotonic()
                if remaining <= 0:
                    return False
                slice_ = min(slice_, remaining)
            if lock.acquire(timeout=slice_):
                return True
