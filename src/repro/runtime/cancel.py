"""Fail-fast cancellation for the native Force runtime.

When any process of a force raises, the whole program is dead: every
peer blocked in a barrier episode, an asynchronous-variable wait, an
Askfor ``get`` or a selfscheduled-loop entry/exit would otherwise sit
there until the join timeout expires and the error is misreported as a
deadlock.  A :class:`CancelToken` is the shared poison flag that turns
that hang into prompt propagation: the failing process calls
:meth:`CancelToken.cancel` with the original error, the token wakes
every registered condition variable, and each blocked peer raises
:class:`ForceCancelled` out of its construct.

Constructs that wait on a :class:`threading.Condition` register it with
the token (so cancellation is a ``notify_all``, not a poll); constructs
that wait on :class:`threading.Event` flags or plain locks use the
token's polling helpers with a short poll interval, bounding the
propagation latency without slowing the uncontended fast path.
"""

from __future__ import annotations

import threading
from time import monotonic as _monotonic
from typing import Callable

from repro._util.errors import ForceDeadlockError, ForceError

#: poll interval for waits that cannot be woken by ``notify_all``
#: (events, semaphores, plain locks).  Bounds cancellation latency.
POLL_INTERVAL = 0.02

#: revalidation slice for condition waits: waiters wake this often to
#: re-check their predicate even if the wakeup that should have freed
#: them was lost, and to run hazard checks (dead-worker detection).
#: The default initial slice of :class:`CancelToken` waits; override
#: per force with ``Force(..., revalidate_interval=)``.
REVALIDATE_INTERVAL = 0.05

#: long parks back off: each consecutive slice of one wait doubles …
REVALIDATE_GROWTH = 2.0
#: … up to this multiple of the initial slice, so an idle waiter costs
#: a bounded number of wakeups per second instead of a fixed 20/s,
#: while lost-wakeup and dead-partner detection latency stays bounded.
REVALIDATE_CAP_FACTOR = 8.0


class ForceCancelled(ForceError):
    """The force was poisoned by another process's failure.

    Raised inside blocked constructs so every process unwinds promptly;
    ``Force.run`` filters these and re-raises the *original* failure.
    """

    def __init__(self, error: BaseException | None = None) -> None:
        self.error = error
        detail = f": {error}" if error is not None else ""
        super().__init__(f"force cancelled{detail}")


class CancelToken:
    """Shared poison flag with condition-variable wakeup.

    One token is shared by every construct of one :class:`Force` run.
    ``cancel(error)`` is idempotent: the first error wins and is the
    one re-raised by ``Force.run``.
    """

    __slots__ = ("_lock", "_flag", "_conditions", "error",
                 "construct_timeout", "revalidate_interval")

    def __init__(self, *, construct_timeout: float | None = None,
                 revalidate_interval: float = REVALIDATE_INTERVAL) -> None:
        if revalidate_interval <= 0:
            raise ForceError("revalidate_interval must be positive")
        self._lock = threading.Lock()
        self._flag = threading.Event()
        self._conditions: list[threading.Condition] = []
        self.error: BaseException | None = None
        #: per-construct blocking deadline: a wait with no explicit
        #: timeout that exceeds this raises ForceDeadlockError naming
        #: the construct (and poisons the force), instead of hanging
        #: until the global join timeout.
        self.construct_timeout = construct_timeout
        #: initial revalidation slice; long parks back off from here
        #: (×:data:`REVALIDATE_GROWTH` per slice, capped at
        #: ×:data:`REVALIDATE_CAP_FACTOR`).
        self.revalidate_interval = revalidate_interval

    @property
    def cancelled(self) -> bool:
        return self._flag.is_set()

    def register(self, condition: threading.Condition) -> None:
        """Add a condition to wake with ``notify_all`` on cancellation."""
        with self._lock:
            self._conditions.append(condition)

    def cancel(self, error: BaseException | None = None) -> None:
        """Poison the force; wake every registered waiter."""
        with self._lock:
            if self._flag.is_set():
                return
            self.error = error
            self._flag.set()
            conditions = list(self._conditions)
        for condition in conditions:
            with condition:
                condition.notify_all()

    def check(self) -> None:
        """Raise :class:`ForceCancelled` if the force is poisoned."""
        if self._flag.is_set():
            raise ForceCancelled(self.error)

    # ------------------------------------------------------------------
    # wait helpers
    # ------------------------------------------------------------------
    def _construct_deadline(self, timeout: float | None,
                            ) -> tuple[float | None, bool]:
        """(absolute deadline, is it the construct deadline?)."""
        if timeout is not None:
            return _monotonic() + timeout, False
        if self.construct_timeout is not None:
            return _monotonic() + self.construct_timeout, True
        return None, False

    def _deadlock(self, what: str) -> "ForceDeadlockError":
        """Build, propagate and return the construct-deadline error.

        The token is cancelled with the error first, so every peer
        parked elsewhere unwinds too and ``Force.run`` re-raises the
        structured error rather than a join timeout.
        """
        error = ForceDeadlockError(
            f"construct deadline of {self.construct_timeout}s exceeded "
            f"while parked on {what} (deadlock or dead partner?)",
            construct=what, timeout=self.construct_timeout)
        self.cancel(error)
        return error

    def wait_for(self, condition: threading.Condition,
                 predicate: Callable[[], bool],
                 timeout: float | None = None, *,
                 what: str = "construct",
                 hazard: Callable[[], BaseException | None] | None = None,
                 ) -> bool:
        """Token-aware ``Condition.wait_for`` (condition must be held).

        Returns the predicate result (False only on explicit timeout);
        raises :class:`ForceCancelled` if the token fires while
        waiting.  The condition must have been :meth:`register`-ed so
        that ``cancel`` wakes it.

        Waiting happens in bounded slices (starting at the token's
        ``revalidate_interval``) so a waiter whose wakeup was lost
        still revalidates its predicate, and the optional ``hazard``
        check runs periodically: if it returns an error (e.g. a dead
        partner was detected) the token is cancelled with it and it is
        raised here.  Consecutive slices of one park grow by
        :data:`REVALIDATE_GROWTH` up to :data:`REVALIDATE_CAP_FACTOR`
        × the interval, so a long park costs a bounded wakeup rate.
        Without an explicit ``timeout``, the token's
        ``construct_timeout`` bounds the wait with a
        :class:`ForceDeadlockError` naming ``what``.
        """
        deadline, is_construct = self._construct_deadline(timeout)
        interval = self.revalidate_interval
        cap = interval * REVALIDATE_CAP_FACTOR
        next_slice = interval
        while True:
            self.check()
            if predicate():
                return True
            if hazard is not None:
                error = hazard()
                if error is not None:
                    self.cancel(error)
                    raise error
            slice_ = next_slice
            next_slice = min(cap, next_slice * REVALIDATE_GROWTH)
            if deadline is not None:
                remaining = deadline - _monotonic()
                if remaining <= 0:
                    if is_construct:
                        raise self._deadlock(what)
                    return False
                slice_ = min(slice_, remaining)
            condition.wait(slice_)

    def wait_event(self, event: threading.Event, *,
                   what: str = "construct") -> None:
        """Wait for an event, polling the poison flag in between.

        Honours the construct deadline: a wait longer than
        ``construct_timeout`` raises :class:`ForceDeadlockError`.
        """
        deadline, is_construct = self._construct_deadline(None)
        while not event.wait(POLL_INTERVAL):
            self.check()
            if is_construct and _monotonic() >= deadline:
                raise self._deadlock(what)

    def acquire(self, lock, timeout: float | None = None, *,
                what: str = "lock") -> bool:
        """Token-aware acquire of a Lock/Semaphore (polling).

        Without an explicit ``timeout``, the construct deadline bounds
        the acquire with a :class:`ForceDeadlockError` naming ``what``.
        """
        deadline, is_construct = self._construct_deadline(timeout)
        while True:
            self.check()
            slice_ = POLL_INTERVAL
            if deadline is not None:
                remaining = deadline - _monotonic()
                if remaining <= 0:
                    if is_construct:
                        raise self._deadlock(what)
                    return False
                slice_ = min(slice_, remaining)
            if lock.acquire(timeout=slice_):
                return True
