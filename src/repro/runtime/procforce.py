"""The process-based Force backend: true multi-core execution.

``Force(nproc, backend="process")`` returns a :class:`ProcessForce`
whose members are real OS processes (``multiprocessing`` fork
context): the paper's methodology applied to the Python host itself.
Where the thread backend shares objects through the interpreter heap,
this backend places every shared construct — counters, arrays,
full/empty variables, askfor pools, critical-section lock words,
barrier state, selfscheduled-loop records — in one POSIX
shared-memory segment (:class:`repro.machines.memory.SharedArena`)
and accesses it through numpy views, so workers bypass the GIL
entirely.

The public API is the thread backend's, unchanged:

* constructs: ``barrier`` / ``barrier_section`` / ``critical`` /
  ``selfsched_range`` / ``presched_range`` / ``presched_pairs`` /
  ``pcase`` / ``askfor`` / ``shared_counter`` / ``shared_array`` /
  ``async_var`` / ``async_array``;
* fail-fast semantics: the first failing worker poisons the force
  through a shared poison word + pickled-error slot, peers unwind with
  ``ForceCancelled``, and :meth:`ProcessForce.run` re-raises the
  original error;
* ``construct_timeout`` bounds every blocking wait with a structured
  :class:`~repro._util.errors.ForceDeadlockError`;
* stats and traces are collected per worker and merged in the parent;
* fault-injection sites fire at the same (site, name, occurrence)
  coordinates — hit counters live in the arena so the n-th occurrence
  is global across processes, exactly as the thread backend counts
  globally across threads.

Contract differences (documented in ``docs/LANGUAGE.md``):

* programs and their arguments must be **picklable** (enforced up
  front with a clear error) — the groundwork distributed execution
  needs;
* shared values are **numeric** (float64 cells); arbitrary Python
  objects cannot live in shared memory;
* shared-memory lifetime is owned by the parent: the segment is
  unlinked in a ``finally`` covering normal exit, injected deaths,
  cancellation and timeouts — no leaked ``/dev/shm`` entries.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import threading
from contextlib import contextmanager
from time import monotonic, sleep
from typing import Any, Callable, Iterator

import numpy as np

from repro._util.errors import (
    ForceDeadlockError,
    ForceError,
    ForceWorkerDied,
)
from repro.faults.injector import FaultInjector, InjectedDeath
from repro.machines.memory import SharedArena, sweep_stale_arenas
from repro.runtime.cancel import (
    REVALIDATE_CAP_FACTOR,
    REVALIDATE_GROWTH,
    ForceCancelled,
)
from repro.runtime.checkpoint import (
    CheckpointError,
    array_entry,
    askfor_entry,
    asyncarray_entry,
    asyncvar_entry,
    build_checkpoint,
    counter_entry,
    decode_array,
)
from repro.runtime.force import Force, ForceProgramError
from repro.obsv.metrics import ForceMetrics, MetricsRegistry
from repro.runtime.stats import ForceStats
from repro.trace.collector import TraceCollector
from repro.trace.events import TraceEvent

#: maximum pickled size of the first-failure error (arena slot)
_ERROR_CAPACITY = 65536
#: shared-object registry capacity (named constructs per run)
_REGISTRY_CAPACITY = 512
#: bytes reserved per registered name
_NAME_BYTES = 64
#: askfor ring capacity (outstanding numeric work items)
_ASKFOR_RING = 4096
#: bytes reserved per recorded death site
_SITE_BYTES = 32

#: registry kind codes
_K_CRITICAL = 1
_K_COUNTER = 2
_K_ARRAY = 3
_K_ASYNC = 4
_K_ASKFOR = 5
_K_LOOP = 6
_K_ASYNC_ARRAY = 7

_KIND_LABEL = {
    _K_CRITICAL: "critical", _K_COUNTER: "shared_counter",
    _K_ARRAY: "shared_array", _K_ASYNC: "async_var",
    _K_ASKFOR: "askfor", _K_LOOP: "selfsched",
    _K_ASYNC_ARRAY: "async_array",
}

#: dtype codes for shared arrays
_DTYPES = {1: np.float64, 2: np.int64, 3: np.bool_,
           4: np.int32, 5: np.float32}
_DTYPE_CODES = {np.dtype(d): code for code, d in _DTYPES.items()}

_SCHEDULES = ("self", "chunked", "guided")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:     # pragma: no cover - other-user pid
        return True
    return True


class _SharedHitInjector(FaultInjector):
    """Fault injector whose hit counters live in the shared arena.

    The thread backend counts occurrences globally across threads
    under one lock; to preserve "the n-th matching hit fires" across
    *processes*, hits and fired flags are int64 arena cells mutated
    under the backend's cross-process bus lock.
    """

    def __init__(self, plan, *, tracer=None,
                 hits: np.ndarray, fired: np.ndarray, bus) -> None:
        super().__init__(plan, tracer=tracer)
        self._shared_hits = hits
        self._shared_fired = fired
        self._bus = bus

    def _due(self, site, name, me, kinds):
        with self._bus:
            due = None
            for index, spec in enumerate(self.plan.faults):
                if spec.kind not in kinds or self._shared_fired[index]:
                    continue
                if not spec.matches(site, name, me):
                    continue
                self._shared_hits[index] += 1
                if int(self._shared_hits[index]) == spec.occurrence \
                        and due is None:
                    self._shared_fired[index] = 1
                    due = spec
            if due is not None:
                self._record(due, site, name, me)
            return due


class _ShmCounter:
    """:class:`SharedCounter` twin over one float64 arena cell."""

    __slots__ = ("_cell",)

    def __init__(self, cell: np.ndarray) -> None:
        self._cell = cell

    @property
    def value(self) -> float:
        return self._cell[0].item()

    @value.setter
    def value(self, new: float) -> None:
        self._cell[0] = new


class _ShmAsyncVariable:
    """Full/empty variable over [int64 flag, float64 value] cells."""

    __slots__ = ("_force", "_name", "_flag", "_value")

    def __init__(self, force: "ProcessForce", name: str,
                 flag: np.ndarray, value: np.ndarray) -> None:
        self._force = force
        self._name = name
        self._flag = flag
        self._value = value

    def _fire(self, op: str) -> None:
        injector = self._force._injector
        if injector is not None:
            injector.fire(f"asyncvar.{op}", self._name)

    def _notify_all(self, op: str) -> None:
        injector = self._force._injector
        if injector is not None and \
                injector.swallow_notify(f"asyncvar.{op}", self._name):
            return
        self._force._bus.notify_all()

    @property
    def isfull(self) -> bool:
        with self._force._bus:
            return bool(self._flag[0])

    def _await(self, predicate: Callable[[], bool],
               timeout: float | None, failure: str, op: str) -> None:
        """Wait (bus held) until predicate; cancel/stats/trace aware."""
        if predicate():
            return
        force = self._force
        tracer = force._tracer
        stats = force._stats
        metrics = force._metrics
        observed = stats is not None or tracer is not None \
            or metrics is not None
        started = monotonic() if observed else 0.0
        if tracer is not None:
            tracer.mark_parked("asyncvar", self._name)
        try:
            what = f"asyncvar '{self._name}'" if self._name \
                else "asyncvar"
            satisfied = force._await(predicate, what, timeout=timeout)
            if not satisfied:
                raise ForceError(failure)
        finally:
            if tracer is not None:
                tracer.clear_parked()
                waited = monotonic() - started
                tracer.record("asyncvar", self._name, op, phase="X",
                              ts=tracer.now() - waited, dur=waited)
            if stats is not None:
                stats.record_asyncvar_block(self._name,
                                            monotonic() - started)
            if metrics is not None:
                metrics.asyncvar_block(self._name,
                                       monotonic() - started)

    def produce(self, value: Any, *,
                timeout: float | None = None) -> None:
        self._fire("produce")
        with self._force._bus:
            self._await(lambda: not self._flag[0], timeout,
                        "produce timed out (variable stayed full)",
                        "produce")
            self._value[0] = value
            self._flag[0] = 1
            self._notify_all("produce")

    def consume(self, *, timeout: float | None = None) -> float:
        self._fire("consume")
        with self._force._bus:
            self._await(lambda: bool(self._flag[0]), timeout,
                        "consume timed out (variable stayed empty)",
                        "consume")
            value = self._value[0].item()
            self._flag[0] = 0
            self._notify_all("consume")
            return value

    def copy(self, *, timeout: float | None = None) -> float:
        self._fire("copy")
        with self._force._bus:
            self._await(lambda: bool(self._flag[0]), timeout,
                        "copy timed out (variable stayed empty)",
                        "copy")
            return self._value[0].item()

    def void(self) -> None:
        self._fire("void")
        with self._force._bus:
            self._flag[0] = 0
            self._notify_all("void")


class _ShmAsyncArray:
    """Array of full/empty cells over the arena."""

    def __init__(self, cells: list[_ShmAsyncVariable]) -> None:
        self._cells = cells

    def __len__(self) -> int:
        return len(self._cells)

    def __getitem__(self, index: int) -> _ShmAsyncVariable:
        return self._cells[index]

    def produce(self, index: int, value: Any, **kw) -> None:
        self._cells[index].produce(value, **kw)

    def consume(self, index: int, **kw) -> float:
        return self._cells[index].consume(**kw)

    def copy(self, index: int, **kw) -> float:
        return self._cells[index].copy(**kw)

    def void_all(self) -> None:
        for cell in self._cells:
            cell.void()


# askfor control-word indices
_AF_HEAD, _AF_TAIL, _AF_DONE, _AF_PUT, _AF_GOT, _AF_DEPTH = range(6)
_AF_CTRL = 8


class _ShmAskforMonitor:
    """Askfor monitor over a shared numeric ring.

    Same termination/drain contract as
    :class:`~repro.runtime.askfor.AskforMonitor`: ``get`` drains queued
    items before declaring termination, a ``put`` after termination
    raises, and a worker that dies holding an item is detected through
    the pid table (dead-holder hazard) and poisons the force with
    :class:`ForceWorkerDied`.
    """

    def __init__(self, force: "ProcessForce", name: str,
                 ctrl: np.ndarray, holder: np.ndarray,
                 ring: np.ndarray) -> None:
        self._force = force
        self._name = name
        self._ctrl = ctrl
        self._holder = holder
        self._ring = ring

    def _describe(self) -> str:
        return f"askfor '{self._name}'" if self._name else "askfor"

    # -- counters (shared, so every process sees the same totals) ------
    @property
    def total_put(self) -> int:
        return int(self._ctrl[_AF_PUT])

    @property
    def total_got(self) -> int:
        return int(self._ctrl[_AF_GOT])

    @property
    def max_depth(self) -> int:
        return int(self._ctrl[_AF_DEPTH])

    def _depth(self) -> int:
        return int(self._ctrl[_AF_TAIL] - self._ctrl[_AF_HEAD])

    def put(self, item: float) -> None:
        force = self._force
        injector = force._injector
        with force._bus:
            if self._ctrl[_AF_DONE]:
                raise ForceError("putwork after the pool terminated")
            if self._depth() >= len(self._ring):
                raise ForceError(
                    f"askfor '{self._name}': shared ring full "
                    f"({len(self._ring)} outstanding items)")
            self._ring[int(self._ctrl[_AF_TAIL]) % len(self._ring)] = \
                item
            self._ctrl[_AF_TAIL] += 1
            self._ctrl[_AF_PUT] += 1
            if self._depth() > self._ctrl[_AF_DEPTH]:
                self._ctrl[_AF_DEPTH] = self._depth()
            if force._tracer is not None:
                force._tracer.record("askfor", self._name, "put",
                                     depth=self._depth())
            if injector is None or \
                    not injector.swallow_notify("askfor.put",
                                                self._name):
                force._bus.notify_all()
        if injector is not None:
            injector.fire("askfor.put", self._name)

    def get(self) -> tuple[bool, Any]:
        force = self._force
        tracer = force._tracer
        me = force._resolve_me(None)
        with force._bus:
            if self._holder[me - 1]:
                self._holder[me - 1] = 0
                force._bus.notify_all()
            wait_started: float | None = None
            while True:
                force._check_poison()
                if self._depth() > 0:
                    self._holder[me - 1] = 1
                    self._ctrl[_AF_GOT] += 1
                    item = self._ring[int(self._ctrl[_AF_HEAD])
                                      % len(self._ring)].item()
                    self._ctrl[_AF_HEAD] += 1
                    if tracer is not None:
                        self._trace_wait_end(wait_started)
                        tracer.record("askfor", self._name, "got",
                                      depth=self._depth())
                    break
                if self._ctrl[_AF_DONE] or \
                        int(self._holder.sum()) == 0:
                    self._ctrl[_AF_DONE] = 1
                    force._bus.notify_all()
                    if tracer is not None:
                        self._trace_wait_end(wait_started)
                        tracer.record("askfor", self._name,
                                      "terminated")
                    return False, None
                if tracer is not None and wait_started is None:
                    wait_started = monotonic()
                    tracer.mark_parked("askfor", self._name)
                force._await(
                    lambda: self._depth() > 0 or
                    bool(self._ctrl[_AF_DONE]) or
                    int(self._holder.sum()) == 0,
                    self._describe(),
                    hazard=self._dead_holder_hazard)
        if force._injector is not None:
            force._injector.fire("askfor.got", self._name)
        return True, item

    def _dead_holder_hazard(self) -> ForceWorkerDied | None:
        """A holder process that died strands the pool: poison it."""
        force = self._force
        for other in range(1, force.nproc + 1):
            if not self._holder[other - 1]:
                continue
            if other in force._dead_workers():
                self._holder[other - 1] = 0
                if force._tracer is not None:
                    force._tracer.record("askfor", self._name,
                                         "dead-holder", proc=other)
                return ForceWorkerDied(
                    other, self._describe(),
                    detail="died while holding a work item")
        return None

    def _trace_wait_end(self, wait_started: float | None) -> None:
        if wait_started is None:
            return
        tracer = self._force._tracer
        tracer.clear_parked()
        waited = monotonic() - wait_started
        tracer.record("askfor", self._name, "wait", phase="X",
                      ts=tracer.now() - waited, dur=waited)

    def __iter__(self) -> Iterator[Any]:
        while True:
            got, item = self.get()
            if not got:
                return
            yield item


# selfsched record indices
_SL_PHASE, _SL_INSIDE, _SL_NEXT, _SL_CHUNK, _SL_SCHED = range(5)
_SL_WORDS = 8


class _ShmSelfschedLoop:
    """Selfscheduled-loop protocol over an arena record.

    Mirrors :class:`repro.runtime.force._SelfschedLoop` — entry phase,
    shared-index dispatch, exit phase in a ``finally`` (skipped on
    injected death by design, so peers detect the stranded protocol
    through the dead-worker hazard).
    """

    def __init__(self, force: "ProcessForce", label: str,
                 record: np.ndarray) -> None:
        self._force = force
        self._label = label
        self._record = record

    @property
    def chunk(self) -> int:
        return int(self._record[_SL_CHUNK])

    @property
    def schedule(self) -> str:
        return _SCHEDULES[int(self._record[_SL_SCHED])]

    def _describe(self) -> str:
        return f"selfsched '{self._label}'" if self._label \
            else "selfsched"

    def _dead_hazard(self) -> ForceWorkerDied | None:
        dead = self._force._dead_workers()
        if dead:
            return ForceWorkerDied(
                min(dead), self._describe(),
                detail="the loop protocol cannot complete")
        return None

    def iterate(self, first: int, last: int,
                step: int) -> Iterator[int]:
        if step == 0:
            raise ForceError("selfsched step must be nonzero")
        force = self._force
        record = self._record
        tracer = force._tracer
        stats = force._stats
        metrics = force._metrics
        nproc = force.nproc
        if tracer is not None:
            tracer.mark_parked("selfsched", self._label)
        with force._bus:
            force._await(lambda: record[_SL_PHASE] == 0,
                         self._describe(), hazard=self._dead_hazard)
            if record[_SL_INSIDE] == 0:
                record[_SL_NEXT] = first
            record[_SL_INSIDE] += 1
            if record[_SL_INSIDE] == nproc:
                record[_SL_PHASE] = 1
                force._bus.notify_all()
        if tracer is not None:
            tracer.clear_parked()
        schedule = self.schedule
        chunk = self.chunk
        try:
            while True:
                with force._bus:
                    force._check_poison()
                    value = int(record[_SL_NEXT])
                    if step > 0:
                        remaining = (last - value) // step + 1 \
                            if value <= last else 0
                    else:
                        remaining = (last - value) // step + 1 \
                            if value >= last else 0
                    if remaining <= 0:
                        break
                    if schedule == "guided":
                        size = max(1, remaining // nproc)
                    else:
                        size = chunk
                    if size > remaining:
                        size = remaining
                    record[_SL_NEXT] = value + size * step
                if stats is not None:
                    stats.record_selfsched_chunk(self._label, size)
                if metrics is not None:
                    metrics.selfsched_chunk(self._label, size)
                if tracer is not None:
                    tracer.record("selfsched", self._label, "chunk",
                                  index=value, size=size)
                if force._injector is not None:
                    force._injector.fire("selfsched.chunk",
                                         self._label)
                for offset in range(size):
                    yield value + offset * step
        finally:
            import sys
            if isinstance(sys.exc_info()[1], InjectedDeath):
                # Abrupt injected death: no cleanup by design — the
                # surviving processes' dead-worker hazard must detect
                # the stranded protocol.
                pass
            else:
                if tracer is not None:
                    tracer.mark_parked("selfsched", self._label)
                with force._bus:
                    force._await(lambda: record[_SL_PHASE] == 1,
                                 self._describe(),
                                 hazard=self._dead_hazard)
                    record[_SL_INSIDE] -= 1
                    if record[_SL_INSIDE] == 0:
                        record[_SL_PHASE] = 0
                        force._bus.notify_all()
                if tracer is not None:
                    tracer.clear_parked()


class ProcessForce(Force):
    """A Force whose members are OS processes over shared memory.

    Constructed through ``Force(nproc, backend="process")``; see the
    module docstring for the contract.
    """

    #: default arena size — generous for the example corpus, still a
    #: rounding error against /dev/shm defaults
    ARENA_BYTES = 1 << 24

    def __init__(self, nproc: int, *, backend: str = "process",
                 arena_bytes: int | None = None, **kwargs: Any) -> None:
        if backend != "process":
            raise ForceError(
                "ProcessForce only implements the 'process' backend")
        self._arena_bytes = arena_bytes or self.ARENA_BYTES
        super().__init__(nproc, backend="process", **kwargs)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        super()._reset_state()
        self._arena: SharedArena | None = None
        self._bus = None
        self._queue = None
        self._procs: list = []
        self._proc_me: int | None = None
        self._merged_events: list[TraceEvent] = []
        self._merged_injected: list = []
        self._merged_metrics: MetricsRegistry | None = None
        self._merged_dropped = 0
        #: events recorded parent-side (e.g. the restore instant);
        #: merged with the workers' streams in _absorb
        self._parent_events: list[TraceEvent] = []
        #: final-state snapshot captured just before the arena is
        #: unlinked (the arena does not outlive run())
        self._final_state_doc: dict[str, Any] | None = None
        # In the parent, the thread-backend collectors built by
        # super()._reset_state() are placeholders: workers build their
        # own and the parent merges what they ship back.
        self._injector = None

    def _setup_shared(self, ctx) -> None:
        """Create the arena, control words and the result queue."""
        arena = SharedArena(size=self._arena_bytes)
        self._arena = arena
        self._bus = ctx.Condition(ctx.RLock())
        self._queue = ctx.Queue()
        # One trace epoch for the whole force, stamped pre-fork so
        # every worker's collector shares the parent's time origin
        # (fork inherits this attribute; each worker would otherwise
        # zero its clock at its own construction time and the merged
        # spans would start from per-process origins).
        self._trace_epoch = monotonic()
        nproc = self.nproc
        self._poison_v = arena.alloc_view(2)        # [flag, errlen]
        self._error_off = arena.alloc(_ERROR_CAPACITY)
        self._barrier_v = arena.alloc_view(2)       # [count, sense]
        self._epoch_v = arena.alloc_view(1)         # barrier epoch
        self._epoch_v[0] = self._barrier_epoch
        self._pids_v = arena.alloc_view(nproc)
        self._shipped_v = arena.alloc_view(1)
        deaths_off = arena.alloc(nproc * _SITE_BYTES)
        self._deaths_v = arena.view(deaths_off, nproc,
                                    f"S{_SITE_BYTES}")
        self._deaths_v[:] = b""
        names_off = arena.alloc(_REGISTRY_CAPACITY * _NAME_BYTES)
        self._registry_names = arena.view(names_off,
                                          _REGISTRY_CAPACITY,
                                          f"S{_NAME_BYTES}")
        self._registry_names[:] = b""
        self._registry_meta = arena.alloc_view(_REGISTRY_CAPACITY * 2)
        if self._fault_plan is not None:
            count = len(self._fault_plan.faults)
            self._fault_hits = arena.alloc_view(max(count, 1))
            self._fault_fired = arena.alloc_view(max(count, 1))

    # ------------------------------------------------------------------
    # poison / cancellation (cross-process CancelToken semantics)
    # ------------------------------------------------------------------
    def _load_error(self) -> BaseException | None:
        if self._arena is None or not self._poison_v[0]:
            return None
        length = int(self._poison_v[1])
        if length <= 0:
            return ForceError("force cancelled (unrecorded error)")
        raw = bytes(self._arena.view(self._error_off, length,
                                     np.uint8))
        try:
            return pickle.loads(raw)
        except Exception:       # pragma: no cover - defensive
            return ForceError("force cancelled (undecodable error)")

    def _poison_locked(self, error: BaseException) -> None:
        """Record the first failure (bus held); idempotent."""
        if self._poison_v[0]:
            return
        try:
            raw = pickle.dumps(error)
        except Exception:
            raw = pickle.dumps(ForceError(str(error)))
        if len(raw) > _ERROR_CAPACITY:
            raw = pickle.dumps(ForceError(str(error)[:1024]))
        view = self._arena.view(self._error_off, len(raw), np.uint8)
        view[:] = np.frombuffer(raw, dtype=np.uint8)
        self._poison_v[1] = len(raw)
        self._poison_v[0] = 1
        self._bus.notify_all()

    def _poison(self, error: BaseException) -> None:
        with self._bus:
            self._poison_locked(error)

    def _check_poison(self) -> None:
        if self._poison_v[0]:
            raise ForceCancelled(self._load_error())

    def _await(self, predicate: Callable[[], bool], what: str, *,
               hazard: Callable[[], BaseException | None] | None = None,
               timeout: float | None = None) -> bool:
        """Poison-aware wait on the bus (bus must be held).

        Mirrors :meth:`CancelToken.wait_for`: bounded revalidation
        slices, hazard checks, and the construct deadline raising a
        structured :class:`ForceDeadlockError` (explicit ``timeout``
        returns False instead).
        """
        if timeout is not None:
            deadline, is_construct = monotonic() + timeout, False
        elif self.construct_timeout is not None:
            deadline = monotonic() + self.construct_timeout
            is_construct = True
        else:
            deadline, is_construct = None, False
        interval = self.revalidate_interval
        cap = interval * REVALIDATE_CAP_FACTOR
        next_slice = interval
        while True:
            self._check_poison()
            if predicate():
                return True
            if hazard is not None:
                error = hazard()
                if error is not None:
                    self._poison_locked(error)
                    raise error
            slice_ = next_slice
            next_slice = min(cap, next_slice * REVALIDATE_GROWTH)
            if deadline is not None:
                remaining = deadline - monotonic()
                if remaining <= 0:
                    if is_construct:
                        error = ForceDeadlockError(
                            f"construct deadline of "
                            f"{self.construct_timeout}s exceeded "
                            f"while parked on {what} "
                            "(deadlock or dead partner?)",
                            construct=what,
                            timeout=self.construct_timeout)
                        self._poison_locked(error)
                        raise error
                    return False
                slice_ = min(slice_, remaining)
            self._bus.wait(slice_)

    # ------------------------------------------------------------------
    # worker liveness
    # ------------------------------------------------------------------
    def _current_me(self) -> int | None:
        if self._proc_me is not None:
            return self._proc_me
        return super()._current_me()

    def _dead_workers(self) -> list[int]:
        dead = set()
        if self._arena is None:
            return []
        for me in range(1, self.nproc + 1):
            if self._deaths_v[me - 1] != b"":
                dead.add(me)
                continue
            pid = int(self._pids_v[me - 1])
            if pid and not _pid_alive(pid):
                dead.add(me)
        return sorted(dead)

    def _death_sites(self) -> dict[int, str]:
        return {me: self._deaths_v[me - 1].decode("ascii", "replace")
                for me in range(1, self.nproc + 1)
                if self._deaths_v[me - 1] != b""}

    # ------------------------------------------------------------------
    # shared-object registry
    # ------------------------------------------------------------------
    def _locate(self, key: str, kind: int,
                creator: Callable[[], int]) -> int:
        """Find or create a named arena object; returns its offset.

        ``creator`` runs under the bus lock, so allocation order (and
        hence every process's view of the arena) is consistent no
        matter which worker touches a name first.
        """
        if self._arena is None:
            raise ForceError(
                "process-backend shared objects exist only inside "
                "run()")
        encoded = key.encode("utf-8")
        if len(encoded) >= _NAME_BYTES:
            raise ForceError(
                f"shared-object name too long ({key!r}); the process "
                f"backend allows {_NAME_BYTES - 1} bytes")
        names = self._registry_names
        meta = self._registry_meta
        with self._bus:
            for index in range(_REGISTRY_CAPACITY):
                if names[index] == encoded:
                    have = int(meta[2 * index])
                    if have != kind:
                        raise ForceError(
                            f"shared object {key!r} already exists as "
                            f"{_KIND_LABEL.get(have, have)}, not "
                            f"{_KIND_LABEL.get(kind, kind)}")
                    return int(meta[2 * index + 1])
                if names[index] == b"":
                    offset = creator()
                    meta[2 * index] = kind
                    meta[2 * index + 1] = offset
                    names[index] = encoded
                    return offset
        raise ForceError(
            f"shared-object registry full ({_REGISTRY_CAPACITY} "
            "names)")

    def _registry_entries(self, kind: int) -> list[tuple[str, int]]:
        out = []
        for index in range(_REGISTRY_CAPACITY):
            raw = self._registry_names[index]
            if raw == b"":
                break
            if int(self._registry_meta[2 * index]) == kind:
                out.append((raw.decode("utf-8"),
                            int(self._registry_meta[2 * index + 1])))
        return out

    # ------------------------------------------------------------------
    # constructs
    # ------------------------------------------------------------------
    def _barrier_arrive(self,
                        section: Callable[[], None] | None) -> bool:
        bar = self._barrier_v
        with self._bus:
            self._check_poison()
            sense = int(bar[1])
            bar[0] += 1
            if bar[0] == self.nproc:
                if section is not None:
                    section()
                policy = self._checkpoint
                if policy is not None:
                    # Every peer is parked on the bus: the quiescent
                    # cut.  Count the episode; snapshot every n-th.
                    self._epoch_v[0] += 1
                    epoch = int(self._epoch_v[0])
                    if epoch % policy.every_n_barriers == 0:
                        self._write_checkpoint(epoch)
                bar[0] = 0
                bar[1] = 1 - sense
                self._bus.notify_all()
                return True
            self._await(lambda: int(bar[1]) != sense, "barrier",
                        hazard=self._barrier_hazard)
            return False

    # ------------------------------------------------------------------
    # checkpoint / restore (over the arena)
    # ------------------------------------------------------------------
    def _apply_restore(self) -> None:
        """Deferred: the arena does not exist at ``_reset_state`` time.

        :meth:`run` applies the restore right after ``_setup_shared``
        (pre-fork, so every worker inherits the restored arena).
        """

    def _apply_restore_arena(self) -> None:
        self._materialize_shared(self._restore_doc)
        if self._trace_enabled:
            self._parent_events.append(TraceEvent(
                ts=0.0, proc="main", kind="recover",
                name="checkpoint", op="restore",
                args={"epoch": self._barrier_epoch,
                      "snapshot_nproc": int(self._restore_doc["nproc"]),
                      "nproc": self.nproc}))

    @property
    def barrier_epoch(self) -> int:
        if self._arena is not None:
            return int(self._epoch_v[0])
        return self._barrier_epoch

    def capture_state(self) -> dict[str, Any]:
        """Snapshot the arena (live) or the final-state doc (post-run).

        The arena does not outlive :meth:`run`, so after a completed
        run this returns the snapshot captured just before unlink —
        available whenever a checkpoint policy was armed.
        """
        if self._arena is None:
            if self._final_state_doc is not None:
                return self._final_state_doc
            raise CheckpointError(
                "no state to capture: the process backend's arena "
                "exists only inside run() (arm a checkpoint policy "
                "to keep the final state)")
        return build_checkpoint(epoch=self.barrier_epoch,
                                nproc=self.nproc, backend=self.backend,
                                constructs=self._capture_shared())

    def _capture_shared(self) -> list[dict[str, Any]]:
        """Serialize every registered arena construct.

        Callers hold the bus or run at quiescence (barrier episode,
        post-join parent): registry and payloads are stable.
        """
        if self._arena is None:
            raise CheckpointError(
                "process-backend shared state exists only inside "
                "run()")
        arena = self._arena
        entries: list[dict[str, Any]] = []
        for key, offset in self._registry_entries(_K_COUNTER):
            cell = arena.view(offset, 1, np.float64)
            entries.append(counter_entry(key[2:], cell[0].item()))
        for key, offset in self._registry_entries(_K_ARRAY):
            header = arena.view(offset, 6)
            dtype = np.dtype(_DTYPES[int(header[0])])
            shape = tuple(int(header[2 + axis])
                          for axis in range(int(header[1])))
            count = int(np.prod(shape)) if shape else 1
            data = arena.view(offset + 6 * 8, count, dtype)
            entries.append(array_entry(key[2:], data.reshape(shape)))
        for key, offset in self._registry_entries(_K_ASYNC):
            full = bool(arena.view(offset, 1)[0])
            value = arena.view(offset + 8, 1, np.float64)[0].item() \
                if full else None
            entries.append(asyncvar_entry(key[2:], full, value))
        for key, offset in self._registry_entries(_K_ASYNC_ARRAY):
            size = int(arena.view(offset, 1)[0])
            cells = []
            for index in range(size):
                base = offset + 8 + 16 * index
                full = bool(arena.view(base, 1)[0])
                cells.append((full,
                              arena.view(base + 8, 1,
                                         np.float64)[0].item()
                              if full else None))
            entries.append(asyncarray_entry(key[2:], cells))
        for key, ctrl_off in self._registry_entries(_K_ASKFOR):
            ctrl = arena.view(ctrl_off, _AF_CTRL)
            ring_off = ctrl_off + (_AF_CTRL + self.nproc) * 8
            ring = arena.view(ring_off, _ASKFOR_RING, np.float64)
            items = [ring[index % _ASKFOR_RING].item()
                     for index in range(int(ctrl[_AF_HEAD]),
                                        int(ctrl[_AF_TAIL]))]
            entries.append(askfor_entry(
                key[2:], items,
                total_put=int(ctrl[_AF_PUT]),
                total_got=int(ctrl[_AF_GOT]),
                max_depth=int(ctrl[_AF_DEPTH]),
                done=bool(ctrl[_AF_DONE])))
        # Criticals are free and selfsched loops are between uses at
        # a quiescent cut: nothing of theirs needs snapshotting.
        return entries

    def _materialize_shared(self, doc: dict[str, Any]) -> None:
        """Rebuild arena constructs from a snapshot (any nproc).

        Runs parent-side through the public creators, so the registry
        and allocation order are exactly what a fresh run would build.
        """
        for entry in doc["payload"]["constructs"]:
            name, kind = entry["name"], entry["kind"]
            try:
                self._materialize_one(name, kind, entry)
            except (ForceError, TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"cannot restore {kind} {name!r} into the "
                    f"process backend: {exc}") from exc

    def _materialize_one(self, name: str, kind: str,
                         entry: dict[str, Any]) -> None:
        if kind == "counter":
            self.shared_counter(name, initial=entry["value"])
        elif kind == "array":
            array = decode_array(entry)
            view = self.shared_array(name, array.shape,
                                     dtype=array.dtype)
            np.copyto(view, array)
        elif kind == "asyncvar":
            var = self.async_var(name)
            if entry["full"]:
                var._value[0] = entry["value"]
                var._flag[0] = 1
        elif kind == "asyncarray":
            cells = entry["cells"]
            shadow = self.async_array(name, len(cells))
            for cell, (full, value) in zip(shadow._cells, cells):
                if full:
                    cell._value[0] = value
                    cell._flag[0] = 1
        elif kind == "askfor":
            pool = self.askfor(name, initial=list(entry["items"]))
            ctrl = pool._ctrl
            ctrl[_AF_PUT] = int(entry["total_put"])
            ctrl[_AF_GOT] = int(entry["total_got"])
            ctrl[_AF_DEPTH] = int(entry["max_depth"])
            ctrl[_AF_DONE] = 1 if entry["done"] else 0
        else:   # pragma: no cover - gated by validate_checkpoint
            raise CheckpointError(f"unknown construct kind {kind!r}")

    def _barrier_hazard(self) -> ForceWorkerDied | None:
        dead = self._dead_workers()
        if dead:
            return ForceWorkerDied(
                min(dead), "barrier",
                detail="the barrier episode cannot complete")
        return None

    def barrier(self, me: int | None = None) -> None:
        me = self._resolve_me(me)
        injector = self._injector
        if injector is not None:
            injector.fire("barrier.entry", "barrier", me)
        stats, tracer = self._stats, self._tracer
        metrics = self._metrics
        if stats is None and tracer is None and metrics is None:
            released = self._barrier_arrive(None)
            if injector is not None and released:
                injector.fire("barrier.episode", "barrier", me)
            return
        if tracer is not None:
            tracer.mark_parked("barrier", "barrier")
        started = monotonic()
        released = self._barrier_arrive(None)
        waited = monotonic() - started
        if tracer is not None:
            tracer.clear_parked()
            tracer.record("barrier", "barrier", "wait", phase="X",
                          ts=tracer.now() - waited, dur=waited)
            if released:
                tracer.record("barrier", "barrier", "episode")
        if stats is not None:
            stats.record_barrier_wait(waited)
            if released:
                stats.record_barrier_episode()
        if metrics is not None:
            metrics.barrier(waited, released)
        if injector is not None and released:
            injector.fire("barrier.episode", "barrier", me)

    def barrier_section(self, me: int,
                        section: Callable[[], None]) -> None:
        me = self._resolve_me(me)
        injector = self._injector
        if injector is not None:
            injector.fire("barrier.entry", "barrier", me)
        stats, tracer = self._stats, self._tracer
        metrics = self._metrics
        if stats is None and tracer is None and metrics is None:
            self._barrier_arrive(section)
            return

        def counted() -> None:
            if stats is not None:
                stats.record_barrier_episode()
            if tracer is not None:
                tracer.record("barrier", "barrier", "episode")
            if metrics is not None:
                metrics.barrier_episode()
            section()

        if tracer is not None:
            tracer.mark_parked("barrier", "barrier")
        started = monotonic()
        self._barrier_arrive(counted)
        waited = monotonic() - started
        if tracer is not None:
            tracer.clear_parked()
            tracer.record("barrier", "barrier", "wait", phase="X",
                          ts=tracer.now() - waited, dur=waited)
        if stats is not None:
            stats.record_barrier_wait(waited)
        if metrics is not None:
            metrics.barrier_wait(waited)

    def _critical_cell(self, name: str) -> np.ndarray:
        offset = self._locate(f"k:{name}", _K_CRITICAL,
                              lambda: self._arena.alloc(8))
        cell = self._arena.view(offset, 1)
        return cell

    @contextmanager
    def critical(self, name: str = "default"):
        """Named critical section over a shared lock word."""
        cell = self._critical_cell(name)
        stats, tracer = self._stats, self._tracer
        metrics = self._metrics
        injector = self._injector
        if injector is not None:
            injector.fire("critical.acquire", name)
        contended = False
        waited = 0.0
        timed = tracer is not None or metrics is not None
        with self._bus:
            self._check_poison()
            if cell[0]:
                contended = True
                if tracer is not None:
                    tracer.mark_parked("critical", name)
                started = monotonic()
                self._await(lambda: cell[0] == 0,
                            f"critical '{name}'")
                waited = monotonic() - started
                if tracer is not None:
                    tracer.clear_parked()
            cell[0] = 1
        held_from = monotonic() if timed else 0.0
        try:
            if stats is not None:
                stats.record_critical(name, waited, contended)
            if injector is not None:
                injector.fire("critical.hold", name)
            yield
        finally:
            with self._bus:
                cell[0] = 0
                self._bus.notify_all()
            if timed:
                held = monotonic() - held_from
                if tracer is not None:
                    if contended:
                        tracer.record("critical", name, "wait",
                                      phase="X",
                                      ts=tracer.now() - held - waited,
                                      dur=waited)
                    tracer.record("critical", name, "hold", phase="X",
                                  ts=tracer.now() - held, dur=held)
                if metrics is not None:
                    metrics.critical(name, waited, contended, held)

    def selfsched_range(self, label: str, first: int, last: int,
                        step: int = 1, *, chunk: int = 1,
                        schedule: str | None = None) -> Iterator[int]:
        if chunk < 1:
            raise ForceError("selfsched chunk must be >= 1")
        if schedule is None:
            schedule = "chunked" if chunk > 1 else "self"
        if schedule not in _SCHEDULES:
            raise ForceError(
                f"unknown selfsched schedule {schedule!r}: "
                "expected 'self', 'chunked' or 'guided'")
        if schedule == "self" and chunk != 1:
            raise ForceError(
                "schedule 'self' hands out one iteration at a time; "
                "use schedule='chunked' with chunk > 1")

        def create() -> int:
            offset = self._arena.alloc(_SL_WORDS * 8)
            record = self._arena.view(offset, _SL_WORDS)
            record[:] = 0
            record[_SL_CHUNK] = chunk
            record[_SL_SCHED] = _SCHEDULES.index(schedule)
            return offset

        offset = self._locate(f"l:{label}", _K_LOOP, create)
        record = self._arena.view(offset, _SL_WORDS)
        loop = _ShmSelfschedLoop(self, label, record)
        if loop.chunk != chunk or loop.schedule != schedule:
            raise ForceError(
                f"selfsched '{label}': conflicting policy "
                f"(existing {loop.schedule!r} chunk={loop.chunk}, "
                f"requested {schedule!r} chunk={chunk})")
        return loop.iterate(first, last, step)

    def askfor(self, name: str,
               initial: list | None = None) -> _ShmAskforMonitor:
        items = list(initial or [])

        def create() -> int:
            ctrl_off = self._arena.alloc(
                (_AF_CTRL + self.nproc) * 8)
            ctrl = self._arena.view(ctrl_off, _AF_CTRL + self.nproc)
            ctrl[:] = 0
            ring_off = self._arena.alloc(_ASKFOR_RING * 8)
            ring = self._arena.view(ring_off, _ASKFOR_RING,
                                    np.float64)
            for index, item in enumerate(items):
                ring[index] = item
            ctrl[_AF_TAIL] = len(items)
            ctrl[_AF_PUT] = len(items)
            ctrl[_AF_DEPTH] = len(items)
            return ctrl_off

        ctrl_off = self._locate(f"s:{name}", _K_ASKFOR, create)
        ctrl = self._arena.view(ctrl_off, _AF_CTRL + self.nproc)
        holder = ctrl[_AF_CTRL:]
        # The ring was allocated immediately after the control block.
        ring_off = ctrl_off + (_AF_CTRL + self.nproc) * 8
        ring = self._arena.view(ring_off, _ASKFOR_RING, np.float64)
        return self._cache(name, _ShmAskforMonitor, self, name,
                           ctrl[:_AF_CTRL], holder, ring)

    def resolve(self, name: str, weights: dict[str, float]):
        raise ForceError(
            "resolve is not supported by the process backend")

    def shared_counter(self, name: str,
                       initial: Any = 0) -> _ShmCounter:
        def create() -> int:
            offset = self._arena.alloc(8)
            self._arena.view(offset, 1, np.float64)[0] = initial
            return offset

        offset = self._locate(f"s:{name}", _K_COUNTER, create)
        return self._cache(name, _ShmCounter,
                           self._arena.view(offset, 1, np.float64))

    def shared_array(self, name: str, shape,
                     dtype=np.float64) -> np.ndarray:
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        resolved = np.dtype(dtype)
        code = _DTYPE_CODES.get(resolved)
        if code is None:
            raise ForceError(
                f"process-backend shared arrays must be numeric "
                f"(got dtype {resolved})")
        if len(shape) > 4:
            raise ForceError("shared arrays support up to 4 dims")
        count = int(np.prod(shape)) if shape else 1

        def create() -> int:
            header_off = self._arena.alloc(6 * 8)
            header = self._arena.view(header_off, 6)
            header[0] = code
            header[1] = len(shape)
            for axis, extent in enumerate(shape):
                header[2 + axis] = extent
            data_off = self._arena.alloc(
                count * resolved.itemsize, align=8)
            data = self._arena.view(data_off, count, resolved)
            data[:] = 0
            return header_off

        header_off = self._locate(f"s:{name}", _K_ARRAY, create)
        header = self._arena.view(header_off, 6)
        stored_code = int(header[0])
        stored_shape = tuple(int(header[2 + axis])
                             for axis in range(int(header[1])))
        stored_dtype = np.dtype(_DTYPES[stored_code])
        stored_count = int(np.prod(stored_shape)) \
            if stored_shape else 1
        data_off = header_off + 6 * 8
        data = self._arena.view(data_off, stored_count, stored_dtype)
        return data.reshape(stored_shape)

    def async_var(self, name: str) -> _ShmAsyncVariable:
        def create() -> int:
            offset = self._arena.alloc(16)
            self._arena.view(offset, 2)[:] = 0
            return offset

        offset = self._locate(f"s:{name}", _K_ASYNC, create)
        return self._cache(
            name, _ShmAsyncVariable, self, name,
            self._arena.view(offset, 1),
            self._arena.view(offset + 8, 1, np.float64))

    def async_array(self, name: str, size: int) -> _ShmAsyncArray:
        if size <= 0:
            raise ForceError("AsyncArray size must be positive")

        def create() -> int:
            # Word 0 records the cell count so a checkpoint capture
            # can walk the cells from the registry offset alone.
            offset = self._arena.alloc(8 + 16 * size)
            self._arena.view(offset, 1)[0] = size
            self._arena.view(offset + 8, 2 * size)[:] = 0
            return offset

        offset = self._locate(f"s:{name}", _K_ASYNC_ARRAY, create)
        stored = int(self._arena.view(offset, 1)[0])
        if stored != size:
            raise ForceError(
                f"async_array '{name}' already exists with "
                f"{stored} cells, not {size}")
        cells = [
            _ShmAsyncVariable(
                self, f"{name}[{index}]",
                self._arena.view(offset + 8 + 16 * index, 1),
                self._arena.view(offset + 8 + 16 * index + 8, 1,
                                 np.float64))
            for index in range(size)
        ]
        return self._cache(name, _ShmAsyncArray, cells)

    def _cache(self, name: str, cls, *args) -> Any:
        """Per-process proxy cache (the arena state is the truth)."""
        with self._registry_lock:
            obj = self._shared.get(name)
            if obj is None or not isinstance(obj, cls):
                obj = cls(*args)
                self._shared[name] = obj
            return obj

    # ------------------------------------------------------------------
    # running a program
    # ------------------------------------------------------------------
    def run(self, program: Callable[..., Any], *args: Any) -> None:
        try:
            pickle.dumps((program, args))
        except Exception as exc:
            raise ForceError(
                "the process backend requires a picklable program "
                f"and arguments: {exc}") from exc
        self._reset_state()
        ctx = multiprocessing.get_context("fork")
        # Reclaim arenas orphaned by a killed parent before allocating
        # a fresh one; the owner-pid guard keeps live forces safe.
        sweep_stale_arenas()
        self._setup_shared(ctx)
        if self._restore_doc is not None:
            self._apply_restore_arena()
        procs = [ctx.Process(target=self._worker,
                             args=(me, program, args),
                             name=f"force-{me}", daemon=True)
                 for me in range(1, self.nproc + 1)]
        self._procs = procs
        payloads: list = []
        try:
            for proc in procs:
                proc.start()
            deadline = None if self.timeout is None \
                else monotonic() + self.timeout
            while True:
                self._drain(payloads)
                if all(not proc.is_alive() for proc in procs):
                    break
                if deadline is not None and monotonic() > deadline:
                    break
                sleep(0.005)
            # Post-join grace: the queue feeder flushes before a
            # worker bumps its shipped counter, so wait (briefly)
            # until every shipped payload arrived.
            grace = monotonic() + 2.0
            while len(payloads) < int(self._shipped_v[0]) and \
                    monotonic() < grace:
                self._drain(payloads)
                sleep(0.005)
            self._drain(payloads)
            self._absorb(payloads)
            failure = self._load_error()
            alive = [proc.name for proc in procs if proc.is_alive()]
            deaths = self._death_sites()
            if failure is not None:
                raise failure
            if alive:
                error = ForceDeadlockError(
                    f"force did not terminate within {self.timeout}s "
                    "(deadlock or missing barrier partner?); still "
                    "alive: " + ", ".join(alive),
                    construct=", ".join(alive), timeout=self.timeout)
                self._poison(error)
                raise error
            if deaths:
                me_dead = min(deaths)
                raise ForceWorkerDied(
                    me_dead, deaths[me_dead],
                    detail="the run completed but the dead process's "
                           "work is missing")
            for me, proc in enumerate(procs, start=1):
                if proc.exitcode not in (0, None):
                    raise ForceWorkerDied(
                        me, "worker process",
                        detail=f"exit status {proc.exitcode}")
            # Run completed clean: keep the final state past the
            # arena's lifetime (the differential oracle compares it).
            self._barrier_epoch = int(self._epoch_v[0])
            if self._checkpoint is not None:
                self._final_state_doc = build_checkpoint(
                    epoch=self._barrier_epoch, nproc=self.nproc,
                    backend=self.backend,
                    constructs=self._capture_shared())
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=1.0)
            if self._queue is not None:
                self._queue.close()
                self._queue = None
            if self._arena is not None:
                self._arena.close()
                self._arena.unlink()
                self._arena = None

    def _drain(self, payloads: list) -> None:
        while True:
            try:
                payloads.append(self._queue.get_nowait())
            except queue_module.Empty:
                return
            except (EOFError, OSError):    # pragma: no cover
                return

    def _absorb(self, payloads: list) -> None:
        """Merge worker stats/trace/injection payloads in the parent."""
        if self._stats_enabled:
            merged = ForceStats(self.nproc)
            for payload in payloads:
                stats_dict = payload[1]
                if stats_dict:
                    merged.merge(ForceStats.from_dict(stats_dict))
            for key, offset in self._registry_entries(_K_ASKFOR):
                ctrl = self._arena.view(offset, _AF_CTRL)
                merged.record_askfor(
                    key[2:],    # strip the "s:" namespace prefix
                    total_put=int(ctrl[_AF_PUT]),
                    total_got=int(ctrl[_AF_GOT]),
                    max_depth=int(ctrl[_AF_DEPTH]))
            self._stats = merged
        if self._metrics_enabled:
            facade = ForceMetrics()
            for payload in payloads:
                metrics_doc = payload[4]
                if metrics_doc:
                    facade.registry.load_dict(metrics_doc)
            # Askfor gauges live in the arena (every worker sees the
            # same totals); settle them once, parent-side.
            for key, offset in self._registry_entries(_K_ASKFOR):
                ctrl = self._arena.view(offset, _AF_CTRL)
                facade.askfor(key[2:],
                              total_put=int(ctrl[_AF_PUT]),
                              total_got=int(ctrl[_AF_GOT]),
                              max_depth=int(ctrl[_AF_DEPTH]))
            self._merged_metrics = facade.registry
        self._merged_dropped = sum(payload[5] for payload in payloads)
        events: list[TraceEvent] = list(self._parent_events)
        injected: list = []
        for payload in sorted(payloads, key=lambda p: p[0]):
            event_dicts, records = payload[2], payload[3]
            if event_dicts:
                events.extend(TraceEvent.from_dict(data)
                              for data in event_dicts)
            if records:
                injected.extend(records)
        self._merged_events = sorted(events, key=lambda e: e.ts)
        self._merged_injected = injected

    def _worker(self, me: int, program: Callable[..., Any],
                args: tuple) -> None:
        self._proc_me = me
        # The injector and askfor resolve process ids from the thread
        # name, exactly as in the thread backend.
        threading.current_thread().name = f"force-{me}"
        self._pids_v[me - 1] = os.getpid()
        self._shared = {}
        self._criticals = {}
        self._loops = {}
        self._stats = ForceStats(self.nproc) \
            if self._stats_enabled else None
        self._tracer = TraceCollector(self._trace_capacity,
                                      epoch=self._trace_epoch) \
            if self._trace_enabled else None
        self._metrics = ForceMetrics() if self._metrics_enabled \
            else None
        self._injector = None
        if self._fault_plan is not None:
            self._injector = _SharedHitInjector(
                self._fault_plan, tracer=self._tracer,
                hits=self._fault_hits, fired=self._fault_fired,
                bus=self._bus)
        tracer = self._tracer
        if tracer is not None:
            tracer.register_lane(f"force-{me}")
            tracer.record("sched", f"force-{me}", "start")
        died = False
        try:
            program(self, me, *args)
        except ForceCancelled:
            pass   # a peer failed first; unwind quietly
        except InjectedDeath as death:
            site = death.spec.site.encode("ascii", "replace")
            self._deaths_v[me - 1] = site[:_SITE_BYTES - 1] or b"?"
            if tracer is not None:
                tracer.record("fault", death.spec.site, "death",
                              proc=me)
            died = True
        except (ForceDeadlockError, ForceWorkerDied) as exc:
            self._poison(exc)
        except BaseException as exc:   # noqa: BLE001 - reported above
            self._poison(ForceProgramError(me, exc))
        finally:
            if tracer is not None:
                tracer.record("sched", f"force-{me}", "end")
                tracer.release_lane()
        self._ship(me)
        if died:
            os._exit(0)

    def _ship(self, me: int) -> None:
        """Send this worker's observability payload to the parent."""
        stats_dict = self._stats.as_dict() \
            if self._stats is not None else None
        event_dicts = [event.as_dict()
                       for event in self._tracer.events()] \
            if self._tracer is not None else None
        dropped = self._tracer.dropped \
            if self._tracer is not None else 0
        metrics_doc = self._metrics.registry.as_dict() \
            if self._metrics is not None else None
        records = list(self._injector.injected) \
            if self._injector is not None else []
        try:
            self._queue.put((me, stats_dict, event_dicts, records,
                             metrics_doc, dropped))
            self._queue.close()
            self._queue.join_thread()
        except Exception:       # pragma: no cover - queue torn down
            return
        with self._bus:
            self._shipped_v[0] += 1

    # ------------------------------------------------------------------
    # observability (parent side)
    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, Any] | None:
        if self._stats is None:
            return None
        return self._stats.as_dict()

    def trace_events(self) -> list[TraceEvent]:
        if not self._trace_enabled:
            raise ForceError(
                "trace collection is off; create Force(..., "
                "trace=True)")
        return list(self._merged_events)

    @property
    def trace_dropped(self) -> int:
        return self._merged_dropped

    def metrics_registry(self, *,
                         wall_s: float | None = None) -> MetricsRegistry:
        if not self._metrics_enabled:
            raise ForceError(
                "metrics collection is off; create Force(..., "
                "metrics=True)")
        registry = self._merged_metrics
        if registry is None:        # run() never happened
            registry = MetricsRegistry()
            self._merged_metrics = registry
        ForceMetrics(registry).run_info(self.nproc, wall_s=wall_s)
        return registry

    def injected_faults(self):
        return list(self._merged_injected)
