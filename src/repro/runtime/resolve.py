"""Resolve: partitioning the force into components (§3.3 extension).

The paper lists Resolve as "a yet unimplemented concept, which would
partition the set of processes into subsets executing different
parallel code sections".  This module implements it for the native
runtime: a :class:`Resolve` splits P processes into weighted components;
each process learns its component and its rank *within* the component,
and each component gets its own barrier so the sections can run as
independent sub-forces.  ``unify()`` joins everyone back together.
"""

from __future__ import annotations

import threading

from repro._util.errors import ForceError
from repro.runtime.barriers import SenseReversingBarrier
from repro.runtime.cancel import CancelToken


class Resolve:
    """Partition ``nproc`` processes into weighted components.

    ``weights`` are relative: ``Resolve(8, {"io": 1, "compute": 3})``
    gives the io component 2 processes and compute 6.  Every component
    receives at least one process when ``nproc >= len(weights)``.
    """

    def __init__(self, nproc: int, weights: dict[str, float], *,
                 cancel: CancelToken | None = None) -> None:
        if not weights:
            raise ForceError("Resolve needs at least one component")
        if nproc < len(weights):
            raise ForceError(
                f"cannot resolve {nproc} processes into "
                f"{len(weights)} components")
        if any(w <= 0 for w in weights.values()):
            raise ForceError("component weights must be positive")
        self.nproc = nproc
        self.names = list(weights)
        total = sum(weights.values())
        # Largest-remainder apportionment with a floor of 1 each.
        raw = {name: nproc * w / total for name, w in weights.items()}
        sizes = {name: max(1, int(raw[name])) for name in self.names}
        while sum(sizes.values()) > nproc:
            victim = max((n for n in self.names if sizes[n] > 1),
                         key=lambda n: sizes[n] - raw[n])
            sizes[victim] -= 1
        remainders = sorted(self.names,
                            key=lambda n: raw[n] - sizes[n], reverse=True)
        i = 0
        while sum(sizes.values()) < nproc:
            sizes[remainders[i % len(remainders)]] += 1
            i += 1
        self.sizes = sizes
        # Process 1..nproc assigned contiguously per component order.
        self._assignment: dict[int, tuple[str, int]] = {}
        me = 1
        for name in self.names:
            for rank in range(1, sizes[name] + 1):
                self._assignment[me] = (name, rank)
                me += 1
        self._component_barriers = {
            name: SenseReversingBarrier(sizes[name], cancel=cancel)
            for name in self.names}
        self._unify_barrier = SenseReversingBarrier(nproc, cancel=cancel)
        self._lock = threading.Lock()

    def component_of(self, me: int) -> tuple[str, int]:
        """(component name, rank within component) for process ``me``."""
        try:
            return self._assignment[me]
        except KeyError as exc:
            raise ForceError(f"process id {me} outside 1..{self.nproc}") \
                from exc

    def size_of(self, name: str) -> int:
        return self.sizes[name]

    def component_barrier(self, me: int) -> None:
        """Barrier over just this process's component sub-force."""
        name, _rank = self.component_of(me)
        self._component_barriers[name].wait(self.component_of(me)[1])

    def unify(self, me: int) -> None:
        """Join all components back into one force (full barrier)."""
        self._unify_barrier.wait(me)
