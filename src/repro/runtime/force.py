"""The native Force: global parallelism over real threads.

One :class:`Force` instance executes one *program* — a callable of
``(force, me)`` — on ``nproc`` threads, mirroring the paper's model:
work is not assigned to specific processes but distributed over the
whole force by the constructs; variables are either shared (named
objects obtained from the force) or private (ordinary locals).

Failure semantics: the first process to raise poisons the whole force
through a shared :class:`~repro.runtime.cancel.CancelToken`.  Peers
blocked in any construct (barrier, critical, selfsched entry/exit,
askfor ``get``, async-variable wait) wake promptly with
``ForceCancelled``; :meth:`Force.run` re-raises the *original*
:class:`ForceProgramError` instead of reporting a join timeout.

Observability: ``Force(nproc, stats=True)`` records per-construct
counters and wait times (see :mod:`repro.runtime.stats`), exposed via
:attr:`Force.stats` / :meth:`Force.stats_report`.  ``Force(nproc,
trace=True)`` additionally records a structured event stream (see
:mod:`repro.trace`) — barrier episodes, critical wait/hold spans,
selfscheduled chunks, askfor traffic, full/empty blocking — exported
via :meth:`Force.trace_events` to Chrome-trace/JSONL/text; with
``watchdog_interval=seconds`` a stall watchdog reports which process
is parked on which construct whenever the stream goes quiet.

Robustness: ``Force(nproc, construct_timeout=seconds)`` bounds every
*blocking construct wait* — a process parked longer raises a
structured :class:`~repro._util.errors.ForceDeadlockError` naming the
construct (and poisons the force) instead of hanging until the global
join timeout.  ``Force(nproc, inject=FaultPlan(...))`` arms the
deterministic fault injector (see :mod:`repro.faults`) at the same
interception points the stats/trace hooks use; a process killed by an
injected ``die`` fault is detected by askfor/selfsched peers, which
poison the force with :class:`~repro._util.errors.ForceWorkerDied`
naming the dead process and the stranded construct.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from time import monotonic
from typing import Any, Callable, Iterator

import numpy as np

from repro._util.errors import (
    ForceDeadlockError,
    ForceError,
    ForceWorkerDied,
)
from repro.faults.injector import FaultInjector, InjectedDeath
from repro.faults.plan import FaultPlan
from repro.obsv.metrics import ForceMetrics, MetricsRegistry
from repro.runtime.askfor import AskforMonitor
from repro.runtime.asyncvar import AsyncArray, AsyncVariable
from repro.runtime.barriers import Barrier, make_barrier
from repro.runtime.cancel import (
    REVALIDATE_INTERVAL,
    CancelToken,
    ForceCancelled,
)
from repro.runtime.checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    array_entry,
    askfor_entry,
    asyncarray_entry,
    asyncvar_entry,
    build_checkpoint,
    counter_entry,
    decode_array,
    load_checkpoint,
    validate_checkpoint,
    write_checkpoint,
)
from repro.runtime.resolve import Resolve
from repro.runtime.stats import ForceStats, render_stats
from repro.trace.collector import TraceCollector
from repro.trace.events import TraceEvent
from repro.trace.watchdog import StallWatchdog


class ForceProgramError(ForceError):
    """A process of the force raised; carries the original exception."""

    def __init__(self, me: int, original: BaseException) -> None:
        self.me = me
        self.original = original
        super().__init__(f"process {me} failed: {original!r}")

    def __reduce__(self):
        # BaseException's default __reduce__ would replay our derived
        # message as the two positional args; rebuild from the real
        # fields so the process backend can pickle failures.
        return (ForceProgramError, (self.me, self.original))


class SharedCounter:
    """A shared scalar cell (update it inside a critical section)."""

    __slots__ = ("value",)

    def __init__(self, value: Any = 0) -> None:
        self.value = value


class _SelfschedLoop:
    """One selfscheduled loop instance: the paper's entry/exit protocol.

    Entry admits processes until all have arrived, the first arrival
    initialising the shared index; the exit phase opens only once every
    process has entered, so a fast process cannot re-enter the loop
    (in an enclosing iteration) before slow ones arrive.

    The exit protocol runs in a ``finally`` so that a consumer that
    ``break``s out of the generator early (``GeneratorExit``) still
    leaves the loop — otherwise ``_inside`` stays incremented and every
    later entry with the same label deadlocks.
    """

    def __init__(self, nproc: int, *,
                 cancel: CancelToken | None = None,
                 on_chunk: Callable[[int], None] | None = None,
                 tracer: TraceCollector | None = None,
                 injector: FaultInjector | None = None,
                 dead_check: Callable[[], list[int]] | None = None,
                 label: str = "",
                 chunk: int = 1,
                 schedule: str = "self") -> None:
        self.nproc = nproc
        self.chunk = chunk
        self.schedule = schedule
        self._condition = threading.Condition()
        self._phase = "entry"
        self._inside = 0
        self._next = 0
        self._cancel = cancel
        self._on_chunk = on_chunk
        self._tracer = tracer
        self._injector = injector
        self._dead_check = dead_check
        self._label = label
        if cancel is not None:
            cancel.register(self._condition)

    def _describe(self) -> str:
        return f"selfsched '{self._label}'" if self._label \
            else "selfsched"

    def _dead_hazard(self) -> ForceWorkerDied | None:
        """A dead force member can never complete the entry/exit
        protocol: poison the loop instead of waiting forever."""
        if self._dead_check is None:
            return None
        dead = self._dead_check()
        if dead:
            return ForceWorkerDied(
                min(dead), self._describe(),
                detail="the loop protocol cannot complete")
        return None

    def _wait_for(self, predicate: Callable[[], bool]) -> None:
        """Wait (condition held) until predicate; poison-aware."""
        if self._cancel is None:
            while not predicate():
                self._condition.wait()
        else:
            self._cancel.wait_for(self._condition, predicate,
                                  what=self._describe(),
                                  hazard=self._dead_hazard)

    def iterate(self, first: int, last: int, step: int) -> Iterator[int]:
        if step == 0:
            raise ForceError("selfsched step must be nonzero")
        tracer = self._tracer
        if tracer is not None:
            tracer.mark_parked("selfsched", self._label)
        with self._condition:
            self._wait_for(lambda: self._phase == "entry")
            if self._inside == 0:
                self._next = first
            self._inside += 1
            if self._inside == self.nproc:
                self._phase = "exit"
                self._condition.notify_all()
        if tracer is not None:
            tracer.clear_parked()
        try:
            while True:
                with self._condition:
                    if self._cancel is not None:
                        self._cancel.check()
                    value = self._next
                    if step > 0:
                        remaining = (last - value) // step + 1 \
                            if value <= last else 0
                    else:
                        remaining = (last - value) // step + 1 \
                            if value >= last else 0
                    if remaining <= 0:
                        break
                    if self.schedule == "guided":
                        size = max(1, remaining // self.nproc)
                    else:
                        size = self.chunk
                    if size > remaining:
                        size = remaining
                    self._next = value + size * step
                if self._on_chunk is not None:
                    self._on_chunk(size)
                if tracer is not None:
                    tracer.record("selfsched", self._label, "chunk",
                                  index=value, size=size)
                if self._injector is not None:
                    self._injector.fire("selfsched.chunk",
                                        self._label)
                for offset in range(size):
                    yield value + offset * step
        finally:
            if isinstance(sys.exc_info()[1], InjectedDeath):
                # Abrupt injected death: no cleanup by design.  The
                # stranded entry/exit state is what the dead-worker
                # hazard above must detect in the surviving processes.
                pass
            else:
                if tracer is not None:
                    tracer.mark_parked("selfsched", self._label)
                with self._condition:
                    self._wait_for(lambda: self._phase == "exit")
                    self._inside -= 1
                    if self._inside == 0:
                        self._phase = "entry"
                        self._condition.notify_all()
                if tracer is not None:
                    tracer.clear_parked()


class _ChunkRecorder:
    """Picklable ``on_chunk`` hook for selfscheduled loops.

    A bound-method/closure pair would drag the whole ``Force`` (and its
    thread locks) into any pickle of the loop state; this tiny object
    carries only the stats sink and the label.
    """

    __slots__ = ("stats", "label", "metrics")

    def __init__(self, stats: ForceStats | None, label: str,
                 metrics: ForceMetrics | None = None) -> None:
        self.stats = stats
        self.label = label
        self.metrics = metrics

    def __call__(self, size: int) -> None:
        if self.stats is not None:
            self.stats.record_selfsched_chunk(self.label, size)
        if self.metrics is not None:
            self.metrics.selfsched_chunk(self.label, size)


class Force:
    """A force of ``nproc`` processes executing one program.

    Process identifiers run 1..nproc, as in the Force.  All named
    shared objects (counters, arrays, async variables, queues, loops)
    are created on first use and shared by name.

    ``backend`` selects the execution vehicle: ``"thread"`` (default)
    runs the force on daemon threads in this process; ``"process"``
    returns a :class:`~repro.runtime.procforce.ProcessForce` whose
    members are real OS processes over POSIX shared memory — same API,
    true multi-core execution, but programs and their arguments must be
    picklable.
    """

    def __new__(cls, nproc: int = 1, *args: Any, **kwargs: Any) -> "Force":
        backend = kwargs.get("backend", "thread")
        if backend not in ("thread", "process"):
            raise ForceError(
                f"unknown backend {backend!r}: expected 'thread' or "
                "'process'")
        if cls is Force and backend == "process":
            from repro.runtime.procforce import ProcessForce
            return object.__new__(ProcessForce)
        return object.__new__(cls)

    def __init__(self, nproc: int, *,
                 backend: str = "thread",
                 barrier_algorithm: str = "central-counter",
                 timeout: float | None = 60.0,
                 construct_timeout: float | None = None,
                 stats: bool = False,
                 metrics: bool = False,
                 trace: bool = False,
                 trace_capacity: int = 65536,
                 inject: FaultPlan | None = None,
                 watchdog_interval: float | None = None,
                 watchdog_sink: Callable[[str], None] | None = None,
                 checkpoint: CheckpointPolicy | None = None,
                 restore: dict | str | None = None,
                 revalidate_interval: float = REVALIDATE_INTERVAL) -> None:
        if nproc < 1:
            raise ForceError("a force needs at least one process")
        if construct_timeout is not None and construct_timeout <= 0:
            raise ForceError("construct_timeout must be positive")
        if revalidate_interval <= 0:
            raise ForceError("revalidate_interval must be positive")
        self.nproc = nproc
        self.backend = backend
        self.timeout = timeout
        self.construct_timeout = construct_timeout
        self.revalidate_interval = revalidate_interval
        self._barrier_algorithm = barrier_algorithm
        self._stats_enabled = stats
        self._metrics_enabled = metrics
        self._trace_enabled = trace
        self._trace_capacity = trace_capacity
        self._fault_plan = inject
        self._watchdog_interval = watchdog_interval
        self._watchdog_sink = watchdog_sink
        self._checkpoint = checkpoint
        if isinstance(restore, str):
            restore = load_checkpoint(restore)
        elif restore is not None:
            problems = validate_checkpoint(restore)
            if problems:
                raise CheckpointError(
                    f"restore document is invalid: {problems[0]}")
        self._restore_doc = restore
        self._registry_lock = threading.Lock()
        self._local = threading.local()
        self._reset_state()

    def _reset_state(self) -> None:
        self._cancel = CancelToken(
            construct_timeout=self.construct_timeout,
            revalidate_interval=self.revalidate_interval)
        self._stats: ForceStats | None = \
            ForceStats(self.nproc) if self._stats_enabled else None
        self._metrics: ForceMetrics | None = \
            ForceMetrics() if self._metrics_enabled else None
        self._tracer: TraceCollector | None = \
            TraceCollector(self._trace_capacity) \
            if self._trace_enabled else None
        self._injector: FaultInjector | None = \
            FaultInjector(self._fault_plan, tracer=self._tracer) \
            if self._fault_plan is not None else None
        self._barrier: Barrier = make_barrier(self._barrier_algorithm,
                                              self.nproc,
                                              cancel=self._cancel)
        self._criticals: dict[str, threading.Lock] = {}
        self._shared: dict[str, Any] = {}
        self._loops: dict[str, _SelfschedLoop] = {}
        self._failures: list[ForceError] = []
        self._threads: dict[int, threading.Thread] = {}
        #: me -> site of an (injected) abrupt death, no cleanup done
        self._deaths: dict[int, str] = {}
        #: completed barrier episodes (counted only while a checkpoint
        #: policy is armed); a restored run continues the snapshot's
        #: numbering so every-n scheduling stays aligned across resume
        self._barrier_epoch = int(self._restore_doc["epoch"]) \
            if self._restore_doc is not None else 0
        if self._restore_doc is not None:
            self._apply_restore()

    def _apply_restore(self) -> None:
        """Re-materialize the restore snapshot into this run's state.

        Called from :meth:`_reset_state` on the thread backend (the
        heap registry exists immediately); the process backend defers
        this until its shared-memory arena is set up.
        """
        self._materialize_shared(self._restore_doc)
        if self._tracer is not None:
            self._tracer.record(
                "recover", "checkpoint", "restore",
                epoch=self._barrier_epoch,
                snapshot_nproc=int(self._restore_doc["nproc"]),
                nproc=self.nproc)

    # ------------------------------------------------------------------
    # running a program
    # ------------------------------------------------------------------
    def run(self, program: Callable[["Force", int], Any],
            *args: Any) -> None:
        """Execute ``program(force, me, *args)`` on every process.

        The first failing process wins: its exception is wrapped in
        :class:`ForceProgramError`, the force is poisoned so blocked
        peers unwind promptly, and that original error is re-raised
        here.  ``timeout`` bounds the *whole* join, not each thread.
        """
        self._reset_state()
        token = self._cancel
        tracer = self._tracer

        def body(me: int) -> None:
            self._local.me = me
            if tracer is not None:
                tracer.register_lane(f"force-{me}")
                tracer.record("sched", f"force-{me}", "start")
            try:
                program(self, me, *args)
            except ForceCancelled:
                pass   # a peer failed first; unwind quietly
            except InjectedDeath as death:
                # Abrupt injected death: the thread vanishes without
                # poisoning the force or cleaning construct state —
                # surviving processes must *detect* it (dead-holder /
                # dead-partner hazards, construct deadlines).
                with self._registry_lock:
                    self._deaths[me] = death.spec.site
                if tracer is not None:
                    tracer.record("fault", death.spec.site, "death",
                                  proc=me)
            except (ForceDeadlockError, ForceWorkerDied) as exc:
                # Structured runtime verdicts: already propagated via
                # the token by whoever detected the condition; record
                # unwrapped so Force.run re-raises them as-is.
                with self._registry_lock:
                    self._failures.append(exc)
                token.cancel(exc)
            except BaseException as exc:   # noqa: BLE001 - reported below
                failure = ForceProgramError(me, exc)
                with self._registry_lock:
                    self._failures.append(failure)
                token.cancel(failure)
            finally:
                if tracer is not None:
                    tracer.record("sched", f"force-{me}", "end")
                    tracer.release_lane()
                self._local.me = None

        watchdog = None
        if tracer is not None and self._watchdog_interval is not None:
            watchdog = StallWatchdog(tracer, self._watchdog_interval,
                                     sink=self._watchdog_sink)
            watchdog.start()
        threads = [threading.Thread(target=body, args=(me,),
                                    name=f"force-{me}", daemon=True)
                   for me in range(1, self.nproc + 1)]
        self._threads = {me: thread for me, thread
                         in enumerate(threads, start=1)}
        try:
            for thread in threads:
                thread.start()
            deadline = None if self.timeout is None \
                else monotonic() + self.timeout
            for thread in threads:
                thread.join(None if deadline is None
                            else max(0.0, deadline - monotonic()))
        finally:
            if watchdog is not None:
                watchdog.stop()
        alive = [thread.name for thread in threads if thread.is_alive()]
        structured = (ForceProgramError, ForceDeadlockError,
                      ForceWorkerDied)
        failure = token.error if isinstance(token.error, structured) \
            else (self._failures[0] if self._failures else None)
        if failure is not None:
            raise failure
        if alive:
            parked = tracer.parked() if tracer is not None else {}
            still = []
            for name in alive:
                kind_name = parked.get(name)
                if kind_name is not None:
                    kind, construct = kind_name
                    where = f"{kind} '{construct}'" if construct else kind
                    still.append(f"{name} (parked on {where})")
                else:
                    still.append(name)
            error = ForceDeadlockError(
                f"force did not terminate within {self.timeout}s "
                "(deadlock or missing barrier partner?); still alive: "
                + ", ".join(still),
                construct=", ".join(still), timeout=self.timeout)
            # Poison the force so the stragglers unwind instead of
            # sitting parked in their constructs forever.
            token.cancel(error)
            raise error
        if self._deaths:
            # Every process terminated, but at least one died abruptly
            # without doing its share: the result cannot be trusted.
            # A structured error beats silent corruption.
            me_dead = min(self._deaths)
            raise ForceWorkerDied(
                me_dead, self._deaths[me_dead],
                detail="the run completed but the dead process's work "
                       "is missing")

    def _current_me(self) -> int | None:
        """This thread's process id, inside :meth:`run` (else None)."""
        return getattr(self._local, "me", None)

    def _dead_workers(self) -> list[int]:
        """Process ids that died abruptly (or exited without finishing
        a construct protocol their peers are still parked in).

        A thread that was never started has ``ident is None`` and does
        not count; a thread that finished *normally* counts only while
        a peer is actually blocked on it — which, for the construct
        protocols that consult this, already implies it quit without
        doing its part.
        """
        with self._registry_lock:
            dead = set(self._deaths)
        for me, thread in self._threads.items():
            if thread.ident is not None and not thread.is_alive():
                dead.add(me)
        return sorted(dead)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def _resolve_me(self, me: int | None) -> int:
        if me is not None:
            return me
        current = self._current_me()
        if current is not None:
            return current
        if self.nproc == 1:
            return 1
        raise ForceError(
            "barrier() called outside a force process; pass me explicitly")

    # -- checkpointing at the consistent cut ---------------------------
    def _episode_hook(self, user_section: Callable[[], None] | None = None
                      ) -> Callable[[], None] | None:
        """The single-process body run inside each barrier episode.

        With a checkpoint policy armed, the body counts the episode
        and — every n-th one — serializes the shared state right
        there, while every peer is still parked in the episode (the
        quiescent cut).  Returns None when nothing needs to run, so
        the plain ``wait`` path stays section-free.
        """
        if user_section is None and self._checkpoint is None:
            return None

        def section() -> None:
            if user_section is not None:
                user_section()
            policy = self._checkpoint
            if policy is not None:
                self._barrier_epoch += 1
                if self._barrier_epoch % policy.every_n_barriers == 0:
                    self._write_checkpoint(self._barrier_epoch)
        return section

    def _run_episode(self, me: int, section: Callable[[], None]) -> bool:
        """Arrive with a section; True iff *this* process ran it.

        ``Barrier.run_section`` implementations disagree on their
        return value, so releasing is detected through the per-caller
        closure: the section runs in exactly one process, inside that
        process's own call frame.
        """
        ran: list[bool] = []

        def wrapped() -> None:
            section()
            ran.append(True)

        self._barrier.run_section(me, wrapped)
        return bool(ran)

    def _write_checkpoint(self, epoch: int) -> None:
        """Serialize shared state (caller is inside the episode)."""
        doc = build_checkpoint(epoch=epoch, nproc=self.nproc,
                               backend=self.backend,
                               constructs=self._capture_shared())
        path = write_checkpoint(self._checkpoint.dir, doc)
        nbytes = os.path.getsize(path)
        if self._tracer is not None:
            self._tracer.record("checkpoint", os.path.basename(path),
                                "write", epoch=epoch, bytes=nbytes)
        if self._metrics is not None:
            self._metrics.checkpoint_written(nbytes)

    @property
    def checkpoint_policy(self) -> CheckpointPolicy | None:
        return self._checkpoint

    @property
    def barrier_epoch(self) -> int:
        """Completed barrier episodes (counted while checkpointing)."""
        return self._barrier_epoch

    def capture_state(self) -> dict[str, Any]:
        """Snapshot the current shared state as a checkpoint document.

        Meaningful at quiescence only — before :meth:`run`, after it
        returned, or inside a barrier section.  This is the
        differential-oracle entry point: two runs whose captured
        ``sha256`` digests agree have bitwise-identical shared state.
        """
        return build_checkpoint(epoch=self._barrier_epoch,
                                nproc=self.nproc, backend=self.backend,
                                constructs=self._capture_shared())

    def _capture_shared(self) -> list[dict[str, Any]]:
        entries: list[dict[str, Any]] = []
        with self._registry_lock:
            shared = dict(self._shared)
        for name, obj in shared.items():
            if isinstance(obj, SharedCounter):
                entries.append(counter_entry(name, obj.value))
            elif isinstance(obj, np.ndarray):
                entries.append(array_entry(name, obj))
            elif isinstance(obj, AsyncVariable):
                entries.append(asyncvar_entry(name, obj._full,
                                              obj._value))
            elif isinstance(obj, AsyncArray):
                entries.append(asyncarray_entry(
                    name, [(cell._full, cell._value)
                           for cell in obj._cells]))
            elif isinstance(obj, AskforMonitor):
                entries.append(askfor_entry(
                    name, list(obj._items),
                    total_put=obj.total_put,
                    total_got=obj.total_got,
                    max_depth=obj.max_depth,
                    done=obj._done))
            else:
                raise CheckpointError(
                    f"shared object {name!r} "
                    f"({type(obj).__name__}) cannot be checkpointed")
        return entries

    def _materialize_shared(self, doc: dict[str, Any]) -> None:
        """Rebuild the heap registry from a snapshot (any nproc)."""
        for entry in doc["payload"]["constructs"]:
            name, kind = entry["name"], entry["kind"]
            obj: Any
            if kind == "counter":
                obj = SharedCounter(entry["value"])
            elif kind == "array":
                obj = decode_array(entry)
            elif kind == "asyncvar":
                obj = AsyncVariable(entry["value"],
                                    full=entry["full"],
                                    cancel=self._cancel,
                                    on_block=self._asyncvar_hook(name),
                                    tracer=self._tracer,
                                    injector=self._injector,
                                    name=name)
            elif kind == "asyncarray":
                cells = entry["cells"]
                obj = AsyncArray(len(cells), cancel=self._cancel,
                                 on_block=self._asyncvar_hook(name),
                                 tracer=self._tracer,
                                 injector=self._injector, name=name)
                for cell, (full, value) in zip(obj._cells, cells):
                    cell._full = bool(full)
                    cell._value = value
            elif kind == "askfor":
                obj = AskforMonitor(list(entry["items"]),
                                    cancel=self._cancel,
                                    tracer=self._tracer,
                                    injector=self._injector,
                                    name=name)
                obj.total_put = int(entry["total_put"])
                obj.total_got = int(entry["total_got"])
                obj.max_depth = int(entry["max_depth"])
                obj._done = bool(entry["done"])
            else:   # pragma: no cover - gated by validate_checkpoint
                raise CheckpointError(
                    f"unknown construct kind {kind!r}")
            with self._registry_lock:
                self._shared[name] = obj

    def barrier(self, me: int | None = None) -> None:
        """Wait for the whole force (§3.4).

        ``me`` defaults to the calling process's own id (tracked per
        thread by :meth:`run`) — the structured barrier algorithms
        need a *valid* id, as each process owns distinct flag slots.
        """
        me = self._resolve_me(me)
        injector = self._injector
        if injector is not None:
            injector.fire("barrier.entry", "barrier", me)
        hook = self._episode_hook()
        stats, tracer = self._stats, self._tracer
        metrics = self._metrics
        if stats is None and tracer is None and metrics is None:
            released = self._barrier.wait(me) if hook is None \
                else self._run_episode(me, hook)
            if injector is not None and released:
                injector.fire("barrier.episode", "barrier", me)
            return
        if tracer is not None:
            tracer.mark_parked("barrier", "barrier")
        started = monotonic()
        released = self._barrier.wait(me) if hook is None \
            else self._run_episode(me, hook)
        waited = monotonic() - started
        if tracer is not None:
            tracer.clear_parked()
            tracer.record("barrier", "barrier", "wait", phase="X",
                          ts=tracer.now() - waited, dur=waited)
            if released:
                tracer.record("barrier", "barrier", "episode")
        if stats is not None:
            stats.record_barrier_wait(waited)
            if released:
                stats.record_barrier_episode()
        if metrics is not None:
            metrics.barrier(waited, released)
        if injector is not None and released:
            injector.fire("barrier.episode", "barrier", me)

    def barrier_section(self, me: int,
                        section: Callable[[], None]) -> None:
        """Barrier whose section runs exactly once, before release."""
        me = self._resolve_me(me)
        injector = self._injector
        if injector is not None:
            injector.fire("barrier.entry", "barrier", me)
        hook = self._episode_hook(section)
        stats, tracer = self._stats, self._tracer
        metrics = self._metrics
        if stats is None and tracer is None and metrics is None:
            self._barrier.run_section(me, hook)
            return

        def counted() -> None:
            if stats is not None:
                stats.record_barrier_episode()
            if metrics is not None:
                metrics.barrier_episode()
            if tracer is not None:
                tracer.record("barrier", "barrier", "episode")
            hook()

        if tracer is not None:
            tracer.mark_parked("barrier", "barrier")
        started = monotonic()
        self._barrier.run_section(me, counted)
        waited = monotonic() - started
        if tracer is not None:
            tracer.clear_parked()
            tracer.record("barrier", "barrier", "wait", phase="X",
                          ts=tracer.now() - waited, dur=waited)
        if stats is not None:
            stats.record_barrier_wait(waited)
        if metrics is not None:
            metrics.barrier_wait(waited)

    @contextmanager
    def critical(self, name: str = "default"):
        """Named critical section: mutual exclusion across the force."""
        with self._registry_lock:
            # Check-then-insert, NOT setdefault(name, threading.Lock()):
            # setdefault evaluates its default eagerly, allocating (and
            # discarding) a fresh Lock on every pass through an already
            # -registered section — churn on the hot path, while holding
            # the registry lock.
            lock = self._criticals.get(name)
            if lock is None:
                lock = threading.Lock()
                self._criticals[name] = lock
        stats, tracer = self._stats, self._tracer
        metrics = self._metrics
        injector = self._injector
        if injector is not None:
            injector.fire("critical.acquire", name)
        contended = False
        waited = 0.0
        timed = tracer is not None or metrics is not None
        if not lock.acquire(blocking=False):
            contended = True
            if tracer is not None:
                tracer.mark_parked("critical", name)
            started = monotonic()
            self._cancel.acquire(lock, what=f"critical '{name}'")
            waited = monotonic() - started
            if tracer is not None:
                tracer.clear_parked()
        held_from = monotonic() if timed else 0.0
        try:
            if stats is not None:
                stats.record_critical(name, waited, contended)
            if injector is not None:
                # Lock held: a delay here is a slow holder, a raise
                # kills the holder (the lock is released on unwind).
                injector.fire("critical.hold", name)
            yield
        finally:
            lock.release()
            if timed:
                held = monotonic() - held_from
                if tracer is not None:
                    if contended:
                        tracer.record("critical", name, "wait",
                                      phase="X",
                                      ts=tracer.now() - held - waited,
                                      dur=waited)
                    tracer.record("critical", name, "hold", phase="X",
                                  ts=tracer.now() - held, dur=held)
                if metrics is not None:
                    metrics.critical(name, waited, contended, held)

    # ------------------------------------------------------------------
    # work distribution
    # ------------------------------------------------------------------
    def presched_range(self, me: int, first: int, last: int,
                       step: int = 1) -> Iterator[int]:
        """Prescheduled DOALL: cyclic index distribution, no sync."""
        if step == 0:
            raise ForceError("presched step must be nonzero")
        value = first + (me - 1) * step
        stride = self.nproc * step
        while (step > 0 and value <= last) or \
                (step < 0 and value >= last):
            yield value
            value += stride

    def selfsched_range(self, label: str, first: int, last: int,
                        step: int = 1, *, chunk: int = 1,
                        schedule: str | None = None) -> Iterator[int]:
        """Selfscheduled DOALL: indices handed out on demand.

        ``label`` identifies the loop (like the statement label in the
        Force); all processes must use the same label for one loop.

        ``schedule`` picks the dispatch policy: ``"self"`` hands out one
        iteration per critical-section acquisition (the paper's §4.2
        expansion), ``"chunked"`` claims ``chunk`` iterations at a time,
        and ``"guided"`` claims ``max(1, remaining // nproc)``.  When
        ``schedule`` is omitted it defaults to ``"chunked"`` if
        ``chunk > 1``, else ``"self"``.  All processes must agree on the
        policy for a given label.
        """
        if chunk < 1:
            raise ForceError("selfsched chunk must be >= 1")
        if schedule is None:
            schedule = "chunked" if chunk > 1 else "self"
        if schedule not in ("self", "chunked", "guided"):
            raise ForceError(
                f"unknown selfsched schedule {schedule!r}: "
                "expected 'self', 'chunked' or 'guided'")
        if schedule == "self" and chunk != 1:
            raise ForceError(
                "schedule 'self' hands out one iteration at a time; "
                "use schedule='chunked' with chunk > 1")
        with self._registry_lock:
            loop = self._loops.get(label)
            if loop is None:
                on_chunk = None
                if self._stats is not None or self._metrics is not None:
                    on_chunk = _ChunkRecorder(self._stats, label,
                                              self._metrics)
                loop = _SelfschedLoop(self.nproc, cancel=self._cancel,
                                      on_chunk=on_chunk,
                                      tracer=self._tracer,
                                      injector=self._injector,
                                      dead_check=self._dead_workers,
                                      label=label,
                                      chunk=chunk,
                                      schedule=schedule)
                self._loops[label] = loop
            elif loop.chunk != chunk or loop.schedule != schedule:
                raise ForceError(
                    f"selfsched '{label}': conflicting policy "
                    f"(existing {loop.schedule!r} chunk={loop.chunk}, "
                    f"requested {schedule!r} chunk={chunk})")
        return loop.iterate(first, last, step)

    def presched_pairs(self, me: int, outer: range,
                       inner: range) -> Iterator[tuple[int, int]]:
        """Prescheduled doubly-nested DOALL over index pairs."""
        pairs = len(outer) * len(inner)
        width = len(inner)
        for k in range(me - 1, pairs, self.nproc):
            yield outer[k // width], inner[k % width]

    def pcase(self, me: int, *sections) -> None:
        """Prescheduled Pcase: section k runs on process k mod nproc.

        Each section is a callable, or a ``(condition, callable)`` pair
        for a conditional section (``Csect``).
        """
        for k, section in enumerate(sections):
            if isinstance(section, tuple):
                condition, body = section
                enabled = condition() if callable(condition) \
                    else bool(condition)
            else:
                body, enabled = section, True
            if enabled and k % self.nproc == (me - 1):
                body()

    def askfor(self, name: str, initial: list | None = None
               ) -> AskforMonitor:
        """The named Askfor work pool (created on first use)."""
        return self._get_shared(
            name, lambda: AskforMonitor(initial, cancel=self._cancel,
                                        tracer=self._tracer,
                                        injector=self._injector,
                                        name=name))

    def resolve(self, name: str, weights: dict[str, float]) -> Resolve:
        """Partition the force into weighted components (extension)."""
        return self._get_shared(
            name, lambda: Resolve(self.nproc, weights, cancel=self._cancel))

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def shared_counter(self, name: str, initial: Any = 0) -> SharedCounter:
        """A named shared scalar (guard updates with ``critical``)."""
        return self._get_shared(name, lambda: SharedCounter(initial))

    def shared_array(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """A named shared numpy array (zero-initialised)."""
        return self._get_shared(name, lambda: np.zeros(shape, dtype=dtype))

    def async_var(self, name: str) -> AsyncVariable:
        """A named asynchronous (full/empty) variable."""
        return self._get_shared(
            name, lambda: AsyncVariable(cancel=self._cancel,
                                        on_block=self._asyncvar_hook(name),
                                        tracer=self._tracer,
                                        injector=self._injector,
                                        name=name))

    def async_array(self, name: str, size: int) -> AsyncArray:
        """A named array of full/empty cells."""
        return self._get_shared(
            name, lambda: AsyncArray(size, cancel=self._cancel,
                                     on_block=self._asyncvar_hook(name),
                                     tracer=self._tracer,
                                     injector=self._injector,
                                     name=name))

    def _asyncvar_hook(self, name: str) -> Callable[[float], None] | None:
        stats, metrics = self._stats, self._metrics
        if stats is None and metrics is None:
            return None

        def hook(seconds: float) -> None:
            if stats is not None:
                stats.record_asyncvar_block(name, seconds)
            if metrics is not None:
                metrics.asyncvar_block(name, seconds)
        return hook

    def _get_shared(self, name: str, factory: Callable[[], Any]) -> Any:
        with self._registry_lock:
            obj = self._shared.get(name)
            if obj is None:
                obj = factory()
                self._shared[name] = obj
            return obj

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def stats_enabled(self) -> bool:
        return self._stats_enabled

    @property
    def trace_enabled(self) -> bool:
        return self._trace_enabled

    @property
    def metrics_enabled(self) -> bool:
        return self._metrics_enabled

    @property
    def trace_collector(self) -> TraceCollector | None:
        """The run's collector (None unless ``trace=True``)."""
        return self._tracer

    @property
    def trace_dropped(self) -> int:
        """Events lost to ring-buffer overflow (0 when trace is off)."""
        return self._tracer.dropped if self._tracer is not None else 0

    @property
    def fault_plan(self) -> FaultPlan | None:
        """The armed fault plan (None unless ``inject=`` was given)."""
        return self._fault_plan

    @property
    def injector(self) -> FaultInjector | None:
        """The last run's fault injector (None without a plan)."""
        return self._injector

    def injected_faults(self):
        """Faults the last run actually executed, in firing order."""
        return list(self._injector.injected) \
            if self._injector is not None else []

    def trace_events(self) -> list[TraceEvent]:
        """The recorded event stream, merged and time-ordered."""
        if self._tracer is None:
            raise ForceError(
                "trace collection is off; create Force(..., trace=True)")
        return self._tracer.events()

    @property
    def stats(self) -> dict[str, Any] | None:
        """Snapshot of collected stats (None unless ``stats=True``)."""
        if self._stats is None:
            return None
        with self._registry_lock:
            pools = [(name, obj) for name, obj in self._shared.items()
                     if isinstance(obj, AskforMonitor)]
        for name, pool in pools:
            self._stats.record_askfor(name, total_put=pool.total_put,
                                      total_got=pool.total_got,
                                      max_depth=pool.max_depth)
        return self._stats.as_dict()

    def stats_report(self) -> str:
        """Human-readable rendering of :attr:`stats`."""
        snapshot = self.stats
        if snapshot is None:
            raise ForceError(
                "stats collection is off; create Force(..., stats=True)")
        return render_stats(snapshot)

    def metrics_registry(self, *,
                         wall_s: float | None = None) -> MetricsRegistry:
        """The run's metrics registry, with end-of-run gauges settled.

        Askfor pool gauges are sampled here (pools only know their
        totals after the run), and ``wall_s`` — when the caller timed
        the run — lands as ``force_run_wall_seconds``.
        """
        if self._metrics is None:
            raise ForceError(
                "metrics collection is off; create Force(..., metrics=True)")
        with self._registry_lock:
            pools = [(name, obj) for name, obj in self._shared.items()
                     if isinstance(obj, AskforMonitor)]
        for name, pool in pools:
            self._metrics.askfor(name, total_put=pool.total_put,
                                 total_got=pool.total_got,
                                 max_depth=pool.max_depth)
        self._metrics.run_info(self.nproc, wall_s=wall_s)
        return self._metrics.registry
