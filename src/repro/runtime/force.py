"""The native Force: global parallelism over real threads.

One :class:`Force` instance executes one *program* — a callable of
``(force, me)`` — on ``nproc`` threads, mirroring the paper's model:
work is not assigned to specific processes but distributed over the
whole force by the constructs; variables are either shared (named
objects obtained from the force) or private (ordinary locals).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator

import numpy as np

from repro._util.errors import ForceError
from repro.runtime.askfor import AskforMonitor
from repro.runtime.asyncvar import AsyncArray, AsyncVariable
from repro.runtime.barriers import Barrier, make_barrier
from repro.runtime.resolve import Resolve


class ForceProgramError(ForceError):
    """A process of the force raised; carries the original exception."""

    def __init__(self, me: int, original: BaseException) -> None:
        self.me = me
        self.original = original
        super().__init__(f"process {me} failed: {original!r}")


class SharedCounter:
    """A shared scalar cell (update it inside a critical section)."""

    __slots__ = ("value",)

    def __init__(self, value: Any = 0) -> None:
        self.value = value


class _SelfschedLoop:
    """One selfscheduled loop instance: the paper's entry/exit protocol.

    Entry admits processes until all have arrived, the first arrival
    initialising the shared index; the exit phase opens only once every
    process has entered, so a fast process cannot re-enter the loop
    (in an enclosing iteration) before slow ones arrive.
    """

    def __init__(self, nproc: int) -> None:
        self.nproc = nproc
        self._condition = threading.Condition()
        self._phase = "entry"
        self._inside = 0
        self._next = 0

    def iterate(self, first: int, last: int, step: int) -> Iterator[int]:
        if step == 0:
            raise ForceError("selfsched step must be nonzero")
        with self._condition:
            while self._phase != "entry":
                self._condition.wait()
            if self._inside == 0:
                self._next = first
            self._inside += 1
            if self._inside == self.nproc:
                self._phase = "exit"
                self._condition.notify_all()
        while True:
            with self._condition:
                value = self._next
                self._next = value + step
            if (step > 0 and value <= last) or \
                    (step < 0 and value >= last):
                yield value
            else:
                break
        with self._condition:
            while self._phase != "exit":
                self._condition.wait()
            self._inside -= 1
            if self._inside == 0:
                self._phase = "entry"
                self._condition.notify_all()


class Force:
    """A force of ``nproc`` processes executing one program.

    Process identifiers run 1..nproc, as in the Force.  All named
    shared objects (counters, arrays, async variables, queues, loops)
    are created on first use and shared by name.
    """

    def __init__(self, nproc: int, *,
                 barrier_algorithm: str = "central-counter",
                 timeout: float | None = 60.0) -> None:
        if nproc < 1:
            raise ForceError("a force needs at least one process")
        self.nproc = nproc
        self.timeout = timeout
        self._barrier_algorithm = barrier_algorithm
        self._registry_lock = threading.Lock()
        self._reset_state()

    def _reset_state(self) -> None:
        self._barrier: Barrier = make_barrier(self._barrier_algorithm,
                                              self.nproc)
        self._criticals: dict[str, threading.Lock] = {}
        self._shared: dict[str, Any] = {}
        self._loops: dict[str, _SelfschedLoop] = {}
        self._failures: list[ForceProgramError] = []

    # ------------------------------------------------------------------
    # running a program
    # ------------------------------------------------------------------
    def run(self, program: Callable[["Force", int], Any],
            *args: Any) -> None:
        """Execute ``program(force, me, *args)`` on every process."""
        self._reset_state()

        def body(me: int) -> None:
            try:
                program(self, me, *args)
            except BaseException as exc:   # noqa: BLE001 - reported below
                with self._registry_lock:
                    self._failures.append(ForceProgramError(me, exc))

        threads = [threading.Thread(target=body, args=(me,),
                                    name=f"force-{me}", daemon=True)
                   for me in range(1, self.nproc + 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(self.timeout)
            if thread.is_alive():
                raise ForceError(
                    f"force did not terminate within {self.timeout}s "
                    "(deadlock or missing barrier partner?)")
        if self._failures:
            raise self._failures[0]

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def barrier(self, me: int | None = None) -> None:
        """Wait for the whole force (§3.4)."""
        self._barrier.wait(me if me is not None else 0)

    def barrier_section(self, me: int,
                        section: Callable[[], None]) -> None:
        """Barrier whose section runs exactly once, before release."""
        self._barrier.run_section(me, section)

    @contextmanager
    def critical(self, name: str = "default"):
        """Named critical section: mutual exclusion across the force."""
        with self._registry_lock:
            lock = self._criticals.setdefault(name, threading.Lock())
        with lock:
            yield

    # ------------------------------------------------------------------
    # work distribution
    # ------------------------------------------------------------------
    def presched_range(self, me: int, first: int, last: int,
                       step: int = 1) -> Iterator[int]:
        """Prescheduled DOALL: cyclic index distribution, no sync."""
        if step == 0:
            raise ForceError("presched step must be nonzero")
        value = first + (me - 1) * step
        stride = self.nproc * step
        while (step > 0 and value <= last) or \
                (step < 0 and value >= last):
            yield value
            value += stride

    def selfsched_range(self, label: str, first: int, last: int,
                        step: int = 1) -> Iterator[int]:
        """Selfscheduled DOALL: indices handed out on demand.

        ``label`` identifies the loop (like the statement label in the
        Force); all processes must use the same label for one loop.
        """
        with self._registry_lock:
            loop = self._loops.get(label)
            if loop is None:
                loop = _SelfschedLoop(self.nproc)
                self._loops[label] = loop
        return loop.iterate(first, last, step)

    def presched_pairs(self, me: int, outer: range,
                       inner: range) -> Iterator[tuple[int, int]]:
        """Prescheduled doubly-nested DOALL over index pairs."""
        pairs = len(outer) * len(inner)
        width = len(inner)
        for k in range(me - 1, pairs, self.nproc):
            yield outer[k // width], inner[k % width]

    def pcase(self, me: int, *sections) -> None:
        """Prescheduled Pcase: section k runs on process k mod nproc.

        Each section is a callable, or a ``(condition, callable)`` pair
        for a conditional section (``Csect``).
        """
        for k, section in enumerate(sections):
            if isinstance(section, tuple):
                condition, body = section
                enabled = condition() if callable(condition) \
                    else bool(condition)
            else:
                body, enabled = section, True
            if enabled and k % self.nproc == (me - 1):
                body()

    def askfor(self, name: str, initial: list | None = None
               ) -> AskforMonitor:
        """The named Askfor work pool (created on first use)."""
        return self._get_shared(name, lambda: AskforMonitor(initial))

    def resolve(self, name: str, weights: dict[str, float]) -> Resolve:
        """Partition the force into weighted components (extension)."""
        return self._get_shared(name, lambda: Resolve(self.nproc, weights))

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def shared_counter(self, name: str, initial: Any = 0) -> SharedCounter:
        """A named shared scalar (guard updates with ``critical``)."""
        return self._get_shared(name, lambda: SharedCounter(initial))

    def shared_array(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """A named shared numpy array (zero-initialised)."""
        return self._get_shared(name, lambda: np.zeros(shape, dtype=dtype))

    def async_var(self, name: str) -> AsyncVariable:
        """A named asynchronous (full/empty) variable."""
        return self._get_shared(name, AsyncVariable)

    def async_array(self, name: str, size: int) -> AsyncArray:
        """A named array of full/empty cells."""
        return self._get_shared(name, lambda: AsyncArray(size))

    def _get_shared(self, name: str, factory: Callable[[], Any]) -> Any:
        with self._registry_lock:
            obj = self._shared.get(name)
            if obj is None:
                obj = factory()
                self._shared[name] = obj
            return obj
