"""Supervised execution: retry, resume, and elastic restart.

:class:`SupervisedRun` wraps either Force backend in the classic
master/worker recovery discipline:

* **classify** — a failed attempt is *transient* when the runtime
  produced a structured liveness verdict
  (:class:`~repro._util.errors.ForceWorkerDied`,
  :class:`~repro._util.errors.ForceDeadlockError`: a worker died or a
  partner went missing) and *permanent* when the program itself raised
  (:class:`~repro.runtime.force.ForceProgramError` or a checkpoint /
  configuration error).  Permanent failures re-raise immediately — the
  exit taxonomy of an unsupervised run is preserved.
* **retry with backoff** — transient failures are retried up to
  ``RetryPolicy.retries`` times, sleeping a capped exponential backoff
  with seeded jitter between attempts (``random.Random(seed)``: the
  same policy produces the same delays, so supervised chaos sweeps
  replay exactly).
* **resume** — each retry restores the newest *valid* snapshot from
  the checkpoint directory (see :mod:`repro.runtime.checkpoint`); a
  corrupt newest snapshot falls back to the previous one, and no valid
  snapshot at all means a clean from-scratch restart.
* **elastic restart** — because snapshots are nproc-independent (the
  paper's programs never name specific processes), a retry may restart
  with *fewer* workers, down to ``min_nproc`` — the degraded-hardware
  case.  When a ``force check --facts`` document is provided, degraded
  restarts are refused unless every DOALL in it is proven race-free:
  an nproc-dependent phase must not be resumed under a different
  worker count.
* **fault re-arming** — an armed :class:`~repro.faults.plan.FaultPlan`
  is re-armed on retry *minus the specs that already fired*: a
  transient fault strikes once, it does not chase the retry forever.

The supervisor records its own metric families (retries, recoveries,
degraded restarts) through :class:`~repro.obsv.metrics.ForceMetrics`;
checkpoint writes are counted by the runtime itself.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro._util.errors import (
    ForceDeadlockError,
    ForceError,
    ForceWorkerDied,
)
from repro.faults.injector import InjectionRecord
from repro.faults.plan import FaultPlan
from repro.obsv.metrics import ForceMetrics
from repro.runtime.checkpoint import (
    CheckpointPolicy,
    latest_checkpoint,
)
from repro.runtime.force import Force

#: failure classes the supervisor treats as worth retrying
TRANSIENT_FAILURES = (ForceWorkerDied, ForceDeadlockError)


def classify_failure(error: BaseException) -> str:
    """``"transient"`` (retry) or ``"permanent"`` (re-raise)."""
    return "transient" if isinstance(error, TRANSIENT_FAILURES) \
        else "permanent"


def nproc_portable(facts: dict | None) -> tuple[bool, str]:
    """May this program resume under a different worker count?

    With no facts document the answer is yes (the language contract
    says Force programs are nproc-independent; trust it).  With one,
    every DOALL must be proven race-free — a racy phase's outcome can
    depend on the interleaving width, so the supervisor refuses to
    change nproc under it.  Returns ``(portable, why_not)``.
    """
    if facts is None:
        return True, ""
    for entry in facts.get("files", []):
        for doall in entry.get("doalls", []):
            if not doall.get("race_free", False):
                where = doall.get("routine", "?")
                label = doall.get("label") or doall.get("line", "?")
                return False, f"DOALL {where}:{label} is not race-free"
    return True, ""


def prune_fired(plan: FaultPlan,
                fired: list[InjectionRecord]) -> FaultPlan:
    """The plan minus the specs that already fired.

    Each fired record consumes the first spec it can have come from
    (same kind/site/occurrence, compatible name and proc), so a
    re-armed retry does not replay a death that already happened —
    while unfired specs stay armed.
    """
    remaining = list(plan.faults)
    for record in fired:
        for index, spec in enumerate(remaining):
            if (spec.kind == record.kind
                    and spec.site == record.site
                    and spec.occurrence == record.occurrence
                    and (not spec.name or spec.name == record.name)
                    and (spec.proc == 0 or spec.proc == record.proc)):
                del remaining[index]
                break
    return FaultPlan(seed=plan.seed, faults=remaining)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: attempts, backoff shape, degrade schedule."""

    retries: int = 3            #: max retries after the first attempt
    base_delay: float = 0.05    #: first backoff (seconds)
    max_delay: float = 2.0      #: backoff ceiling
    degrade_after: int = 2      #: shed one worker from this retry on
    seed: int = 0               #: jitter seed (replayable backoff)

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ForceError("RetryPolicy.retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ForceError(
                "RetryPolicy delays need 0 <= base_delay <= max_delay")
        if self.degrade_after < 1:
            raise ForceError("RetryPolicy.degrade_after must be >= 1")

    def delay(self, retry: int, rng: random.Random) -> float:
        """Backoff before 1-based ``retry``: capped doubling, jittered.

        The jitter multiplies by [0.5, 1.0), so the delay never
        exceeds the cap and never collapses to zero (unless
        ``base_delay`` is zero) — the perfbook discipline for not
        stampeding a shared resource in lockstep.
        """
        raw = self.base_delay * (2.0 ** (retry - 1))
        capped = min(self.max_delay, raw)
        return capped * (0.5 + 0.5 * rng.random())


@dataclass
class AttemptRecord:
    """One supervised attempt, for the run report."""

    attempt: int                    #: 1-based
    nproc: int
    resumed_from: str | None        #: checkpoint path (None = fresh)
    outcome: str = "ok"             #: "ok" | "transient" | "permanent"
    error: str = ""
    backoff: float = 0.0            #: slept before the *next* attempt

    def as_dict(self) -> dict[str, Any]:
        return {"attempt": self.attempt, "nproc": self.nproc,
                "resumed_from": self.resumed_from,
                "outcome": self.outcome, "error": self.error,
                "backoff": self.backoff}


@dataclass
class SupervisedResult:
    """What a supervised run did, attempt by attempt."""

    ok: bool
    attempts: list[AttemptRecord] = field(default_factory=list)
    force: Force | None = None      #: the final attempt's force
    recoveries: int = 0             #: attempts resumed from a snapshot
    degraded_restarts: int = 0      #: resumed at reduced nproc
    final_nproc: int = 0

    @property
    def retries(self) -> int:
        return max(0, len(self.attempts) - 1)

    def as_dict(self) -> dict[str, Any]:
        return {"ok": self.ok,
                "attempts": [a.as_dict() for a in self.attempts],
                "retries": self.retries,
                "recoveries": self.recoveries,
                "degraded_restarts": self.degraded_restarts,
                "final_nproc": self.final_nproc}


class SupervisedRun:
    """Run a program under supervision; see the module docstring.

    ``force_factory(nproc, restore, inject)`` builds each attempt's
    force — override it to wire supervision into a pipeline that
    constructs its own forces (the CLI's native runner does).  The
    default builds ``Force(nproc, backend=..., checkpoint=...,
    restore=..., inject=..., **force_kwargs)``.

    ``sleep`` is injectable so tests assert the backoff schedule
    without waiting it out.
    """

    def __init__(self, program: Callable[..., Any], args: tuple = (),
                 *, nproc: int, backend: str = "thread",
                 checkpoint: CheckpointPolicy | None = None,
                 min_nproc: int | None = None,
                 retry: RetryPolicy | None = None,
                 inject: FaultPlan | None = None,
                 facts: dict | None = None,
                 resume: bool = False,
                 force_factory: Callable[..., Force] | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 metrics: ForceMetrics | None = None,
                 **force_kwargs: Any) -> None:
        if nproc < 1:
            raise ForceError("a force needs at least one process")
        min_nproc = nproc if min_nproc is None else min_nproc
        if not 1 <= min_nproc <= nproc:
            raise ForceError(
                f"min_nproc must be in [1, nproc]; got {min_nproc} "
                f"with nproc={nproc}")
        self.program = program
        self.args = args
        self.nproc = nproc
        self.backend = backend
        self.checkpoint = checkpoint
        self.min_nproc = min_nproc
        self.retry_policy = retry or RetryPolicy()
        self.plan = inject
        self.facts = facts
        self.resume = resume
        self.force_factory = force_factory or self._default_factory
        self.force_kwargs = force_kwargs
        self._sleep = sleep
        self.metrics = metrics or ForceMetrics()
        self._rng = random.Random(self.retry_policy.seed)
        portable, why = nproc_portable(facts)
        self._portable = portable
        self._not_portable_why = why
        #: every InjectionRecord that fired, across ALL attempts (a
        #: single force only reports its own attempt's records)
        self.fired: list[InjectionRecord] = []
        #: the in-progress/last result, readable even when run() raises
        self.last_result: SupervisedResult | None = None

    def _default_factory(self, nproc: int, restore: str | None,
                         inject: FaultPlan | None) -> Force:
        return Force(nproc, backend=self.backend,
                     checkpoint=self.checkpoint, restore=restore,
                     inject=inject, **self.force_kwargs)

    def _resume_path(self, first: bool) -> str | None:
        """Newest valid snapshot — always on retries, on the first
        attempt only when ``resume=True`` was asked for."""
        if self.checkpoint is None or (first and not self.resume):
            return None
        return latest_checkpoint(self.checkpoint.dir)

    def run(self) -> SupervisedResult:
        """Attempt until success, permanent failure, or retries spent.

        Returns the :class:`SupervisedResult` on success; raises the
        last failure otherwise (permanent errors immediately, so the
        caller's exit taxonomy is exactly the unsupervised one).
        """
        policy = self.retry_policy
        result = SupervisedResult(ok=False)
        self.last_result = result
        plan = self.plan
        nproc = self.nproc
        failure: BaseException | None = None
        for attempt in range(1, policy.retries + 2):
            restore = self._resume_path(first=(attempt == 1))
            record = AttemptRecord(attempt=attempt, nproc=nproc,
                                   resumed_from=restore)
            result.attempts.append(record)
            result.final_nproc = nproc
            degraded = nproc < self.nproc
            if degraded:
                result.degraded_restarts += 1
            if restore is not None:
                result.recoveries += 1
                self.metrics.recovery(degraded=degraded)
            force = self.force_factory(nproc, restore, plan)
            result.force = force
            try:
                force.run(self.program, *self.args)
            except TRANSIENT_FAILURES as exc:
                failure = exc
                record.outcome = "transient"
                record.error = repr(exc)
            except BaseException:
                record.outcome = "permanent"
                raise                   # exit taxonomy unchanged
            else:
                result.ok = True
                return result
            finally:
                self.fired.extend(force.injected_faults() or [])
            # transient: maybe retry
            if attempt > policy.retries:
                break
            self.metrics.retry()
            if plan is not None:
                plan = prune_fired(plan, force.injected_faults())
            retry_number = attempt     # retry k follows attempt k
            if retry_number >= policy.degrade_after \
                    and nproc > self.min_nproc and self._portable:
                nproc -= 1
            record.backoff = policy.delay(retry_number, self._rng)
            if record.backoff > 0:
                self._sleep(record.backoff)
        assert failure is not None
        raise failure

    @property
    def portable(self) -> bool:
        """Whether elastic (nproc-changing) restart is permitted."""
        return self._portable

    @property
    def refusal_reason(self) -> str:
        """Why elastic restart is refused ("" when it is allowed)."""
        return self._not_portable_why
