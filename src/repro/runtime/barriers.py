"""Barrier algorithms, after Arenstorf & Jordan [AJ87].

The paper's barrier macro builds on the two-lock central counter; the
cited technical report compares that against structured algorithms.
This module implements four of them over real threads:

* :class:`CentralCounterBarrier` — the Force's own two-lock counter
  barrier, with a *barrier section* executed by exactly one process
  while the rest wait (the paper's ``Barrier``/``End barrier``);
* :class:`SenseReversingBarrier` — central counter with sense reversal
  (one atomic counter, no handoff chain);
* :class:`TournamentBarrier` — log₂(P) rounds of pairwise matches;
* :class:`DisseminationBarrier` — log₂(P) rounds of staged signalling.

All are reusable (safe to call in a loop) and support any P ≥ 1.  The
simulator-side cost comparison is experiment E3; these give the same
algorithms real-concurrency semantics and tests.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro._util.errors import ForceError
from repro.runtime.cancel import CancelToken


class Barrier:
    """Common interface: ``wait(me)`` blocks until all P arrive.

    ``wait`` returns True for exactly one caller per episode (the one
    allowed to run the barrier section in Force semantics); with
    ``run_section`` the section callable runs under that guarantee
    *before* any process is released.

    An optional :class:`CancelToken` makes every blocking point
    poison-aware: when the token fires, blocked arrivals raise
    :class:`~repro.runtime.cancel.ForceCancelled` instead of waiting
    for partners that will never come.  A cancelled barrier must not
    be reused — its internal state is torn mid-episode.
    """

    def __init__(self, nproc: int, *,
                 cancel: CancelToken | None = None) -> None:
        if nproc < 1:
            raise ForceError("barrier needs at least one process")
        self.nproc = nproc
        self._cancel = cancel

    def wait(self, me: int) -> bool:
        raise NotImplementedError

    def run_section(self, me: int, section: Callable[[], None]) -> None:
        """Arrive; one process runs ``section`` before anyone leaves."""
        raise NotImplementedError


class CentralCounterBarrier(Barrier):
    """The Force barrier: counter + two gate locks (§4.2 expansion).

    ``barwin`` admits arrivals one at a time; the last arrival runs the
    barrier section while holding it, then releases everyone through
    ``barwot``.  Any thread may release either lock, exactly like the
    paper's binary-semaphore locks.
    """

    def __init__(self, nproc: int, *,
                 cancel: CancelToken | None = None) -> None:
        super().__init__(nproc, cancel=cancel)
        self._count = 0
        self._barwin = threading.Semaphore(1)   # unlocked
        self._barwot = threading.Semaphore(0)   # locked

    def wait(self, me: int) -> bool:
        return self._arrive(None)

    def run_section(self, me: int, section: Callable[[], None]) -> None:
        self._arrive(section)

    def _acquire(self, semaphore: threading.Semaphore) -> None:
        if self._cancel is None:
            semaphore.acquire()
        else:
            self._cancel.acquire(semaphore, what="barrier")

    def _arrive(self, section: Callable[[], None] | None) -> bool:
        self._acquire(self._barwin)
        self._count += 1
        if self._count < self.nproc:
            self._barwin.release()
            self._acquire(self._barwot)
            self._count -= 1
            if self._count == 0:
                self._barwin.release()
            else:
                self._barwot.release()
            return False
        # Last arrival: barwin stays held, run the section.
        if section is not None:
            section()
        self._count -= 1
        if self._count == 0:
            self._barwin.release()
        else:
            self._barwot.release()
        return True


class SenseReversingBarrier(Barrier):
    """Central counter with per-episode sense reversal."""

    def __init__(self, nproc: int, *,
                 cancel: CancelToken | None = None) -> None:
        super().__init__(nproc, cancel=cancel)
        self._lock = threading.Lock()
        self._count = 0
        self._sense = False
        self._condition = threading.Condition(self._lock)
        if cancel is not None:
            cancel.register(self._condition)

    def wait(self, me: int) -> bool:
        return self.run_section(me, None)

    def run_section(self, me: int,
                    section: Callable[[], None] | None) -> bool:
        with self._condition:
            if self._cancel is not None:
                self._cancel.check()
            my_sense = self._sense
            self._count += 1
            if self._count == self.nproc:
                if section is not None:
                    section()
                self._count = 0
                self._sense = not self._sense
                self._condition.notify_all()
                return True
            if self._cancel is None:
                while self._sense == my_sense:
                    self._condition.wait()
            else:
                self._cancel.wait_for(self._condition,
                                      lambda: self._sense != my_sense,
                                      what="barrier")
            return False


class _RoundFlags:
    """Per-process, per-round flags for the log-depth barriers."""

    def __init__(self, nproc: int, rounds: int) -> None:
        self.events = [[threading.Event() for _ in range(rounds)]
                       for _ in range(nproc)]

    def signal(self, proc: int, rnd: int) -> None:
        self.events[proc][rnd].set()

    def await_and_clear(self, proc: int, rnd: int,
                        cancel: CancelToken | None = None) -> None:
        event = self.events[proc][rnd]
        if cancel is None:
            event.wait()
        else:
            cancel.wait_event(event, what="barrier")
        event.clear()


def _rounds_for(nproc: int) -> int:
    rounds = 0
    span = 1
    while span < nproc:
        span *= 2
        rounds += 1
    return rounds


class DisseminationBarrier(Barrier):
    """Dissemination (butterfly-style) barrier: ⌈log₂P⌉ rounds.

    In round k, process i signals process (i + 2^k) mod P and waits for
    a signal from (i - 2^k) mod P.  No process is special; with P not a
    power of two the pattern still synchronises all processes.

    Two parity-alternated flag sets make the barrier reusable: a fast
    process entering episode e+1 signals into the other set, so it can
    never consume or collapse a signal still pending from episode e
    (the construction of Mellor-Crummey & Scott).
    """

    def __init__(self, nproc: int, *,
                 cancel: CancelToken | None = None) -> None:
        super().__init__(nproc, cancel=cancel)
        self._rounds = _rounds_for(nproc)
        self._flags = (_RoundFlags(nproc, max(self._rounds, 1)),
                       _RoundFlags(nproc, max(self._rounds, 1)))
        #: per-process episode parity; slot i touched only by process i
        self._parity = [0] * nproc
        self._section_gate = SenseReversingBarrier(nproc, cancel=cancel)

    def wait(self, me: int) -> bool:
        index = me - 1
        if not 0 <= index < self.nproc:
            raise ForceError(
                f"barrier process id {me} outside 1..{self.nproc}")
        flags = self._flags[self._parity[index]]
        self._parity[index] ^= 1
        distance = 1
        for rnd in range(self._rounds):
            partner = (index + distance) % self.nproc
            flags.signal(partner, rnd)
            flags.await_and_clear(index, rnd, self._cancel)
            distance *= 2
        return index == 0

    def run_section(self, me: int, section: Callable[[], None]) -> None:
        # Dissemination has no single releasing process, so the section
        # guarantee is delegated to a sense-reversing episode after the
        # dissemination rounds complete.
        self.wait(me)
        self._section_gate.run_section(me, section)


class TournamentBarrier(Barrier):
    """Tournament barrier: pairwise matches up a binary tree.

    Losers wait; winners advance.  The overall champion (process 1)
    runs the section and releases everyone down the tree.
    """

    def __init__(self, nproc: int, *,
                 cancel: CancelToken | None = None) -> None:
        super().__init__(nproc, cancel=cancel)
        self._rounds = _rounds_for(nproc)
        self._arrive = _RoundFlags(nproc, max(self._rounds, 1))
        self._release = _RoundFlags(nproc, max(self._rounds, 1))

    def wait(self, me: int) -> bool:
        return self.run_section(me, None)

    def run_section(self, me: int,
                    section: Callable[[], None] | None) -> bool:
        index = me - 1
        if not 0 <= index < self.nproc:
            raise ForceError(
                f"barrier process id {me} outside 1..{self.nproc}")
        wins = []
        for rnd in range(self._rounds):
            step = 1 << rnd
            if index % (2 * step) == 0:
                partner = index + step
                if partner < self.nproc:
                    self._arrive.await_and_clear(index, rnd, self._cancel)
                wins.append(rnd)
            else:
                partner = index - step
                self._arrive.signal(partner, rnd)
                # Lose: wait for release from the partner, then fan out.
                self._release.await_and_clear(index, rnd, self._cancel)
                for done in reversed(wins):
                    down = index + (1 << done)
                    if down < self.nproc:
                        self._release.signal(down, done)
                return False
        # Champion.
        if section is not None:
            section()
        for done in reversed(wins):
            down = index + (1 << done)
            if down < self.nproc:
                self._release.signal(down, done)
        return True


BARRIER_ALGORITHMS: dict[str, type[Barrier]] = {
    "central-counter": CentralCounterBarrier,
    "sense-reversing": SenseReversingBarrier,
    "dissemination": DisseminationBarrier,
    "tournament": TournamentBarrier,
}


def make_barrier(algorithm: str, nproc: int, *,
                 cancel: CancelToken | None = None) -> Barrier:
    """Instantiate a barrier by algorithm name."""
    try:
        cls = BARRIER_ALGORITHMS[algorithm]
    except KeyError as exc:
        raise ForceError(
            f"unknown barrier algorithm {algorithm!r}; available: "
            f"{', '.join(BARRIER_ALGORITHMS)}") from exc
    return cls(nproc, cancel=cancel)
