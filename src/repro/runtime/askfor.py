"""The Askfor monitor [LO83]: dynamic work distribution (§3.3).

"This construct provides a means of work distribution in cases where
the degree of concurrency is not known at compile time" — workers ask
for work; any worker may add more; the monitor detects global
termination when the pool is empty and no worker still holds an item.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterator

from repro._util.errors import ForceError


class AskforMonitor:
    """A work pool with built-in termination detection."""

    def __init__(self, initial: list | None = None) -> None:
        self._items: deque = deque(initial or [])
        self._condition = threading.Condition()
        self._holders = 0
        self._done = False
        self.total_put = len(self._items)
        self.total_got = 0

    def put(self, item: Any) -> None:
        """Add a work item (callable from inside a worker's body)."""
        with self._condition:
            if self._done:
                raise ForceError("putwork after the pool terminated")
            self._items.append(item)
            self.total_put += 1
            self._condition.notify()

    def get(self) -> tuple[bool, Any]:
        """Ask for work: (True, item), or (False, None) at termination.

        A call to ``get`` also marks the caller's previous item (if
        any) complete — matching the Force askfor loop structure where
        each worker alternates get/process.
        """
        with self._condition:
            if self._holders_includes_me():
                self._holders -= 1
                self._release_me()
                self._condition.notify_all()
            while True:
                if self._items:
                    self._holders += 1
                    self._mark_me_holder()
                    self.total_got += 1
                    return True, self._items.popleft()
                if self._done or self._holders == 0:
                    self._done = True
                    self._condition.notify_all()
                    return False, None
                self._condition.wait()

    # -- holder tracking (thread-identity based) -----------------------
    def _mark_me_holder(self) -> None:
        holders = getattr(self, "_holder_threads", None)
        if holders is None:
            holders = set()
            self._holder_threads = holders
        holders.add(threading.get_ident())

    def _holders_includes_me(self) -> bool:
        holders = getattr(self, "_holder_threads", set())
        return threading.get_ident() in holders

    def _release_me(self) -> None:
        self._holder_threads.discard(threading.get_ident())

    def __iter__(self) -> Iterator[Any]:
        """Iterate work items until global termination."""
        while True:
            got, item = self.get()
            if not got:
                return
            yield item
