"""The Askfor monitor [LO83]: dynamic work distribution (§3.3).

"This construct provides a means of work distribution in cases where
the degree of concurrency is not known at compile time" — workers ask
for work; any worker may add more; the monitor detects global
termination when the pool is empty and no worker still holds an item.

Termination/drain contract: ``get`` always drains queued items before
reporting termination, so every successfully ``put`` item is handed
out exactly once (``total_put == total_got`` at termination).  A
``put`` after the pool terminated raises, so no item is ever silently
dropped.  Monitors created through a Force carry its
:class:`~repro.runtime.cancel.CancelToken`: workers blocked in ``get``
raise ``ForceCancelled`` when a peer process fails.

Robustness: holders are tracked by *thread object*, so a worker that
dies while holding an item (abrupt death, injected or real) is
detected by any blocked ``get`` within one revalidation slice; the
pool then poisons the force with
:class:`~repro._util.errors.ForceWorkerDied` naming the dead process
and the pool — a structured error instead of a termination-protocol
hang.  With a fault injector attached
(``Force(..., inject=plan)``), ``put``/``got`` are injection sites and
``put``'s wakeup can be swallowed by a ``lost-wakeup`` fault (waiters
survive via the revalidating wait).
"""

from __future__ import annotations

import threading
from collections import deque
from time import monotonic
from typing import TYPE_CHECKING, Any, Iterator

from repro._util.errors import ForceError, ForceWorkerDied
from repro.runtime.cancel import CancelToken

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.trace.collector import TraceCollector


def _me_of_thread(thread: threading.Thread) -> int:
    """Force process id from a ``force-N`` thread name (else 0)."""
    name = thread.name
    if name.startswith("force-"):
        try:
            return int(name[6:])
        except ValueError:
            pass
    return 0


class AskforMonitor:
    """A work pool with built-in termination detection.

    With a :class:`~repro.trace.collector.TraceCollector` attached
    (monitors created through ``Force(..., trace=True)``), the pool
    records ``put``/``got`` instants with queue depth and a complete
    span for every blocked wait, and marks the waiting process parked
    for the stall watchdog.
    """

    def __init__(self, initial: list | None = None, *,
                 cancel: CancelToken | None = None,
                 tracer: "TraceCollector | None" = None,
                 injector: "FaultInjector | None" = None,
                 name: str = "") -> None:
        self._items: deque = deque(initial or [])
        self._condition = threading.Condition()
        self._holders = 0
        #: thread ident -> Thread for every worker holding an item;
        #: the liveness source for dead-holder detection
        self._holder_threads: dict[int, threading.Thread] = {}
        self._done = False
        self._cancel = cancel
        self._tracer = tracer
        self._injector = injector
        self._name = name
        self.total_put = len(self._items)
        self.total_got = 0
        #: high-water mark of the queue depth (stats)
        self.max_depth = len(self._items)
        if cancel is not None:
            cancel.register(self._condition)

    def _describe(self) -> str:
        return f"askfor '{self._name}'" if self._name else "askfor"

    def put(self, item: Any) -> None:
        """Add a work item (callable from inside a worker's body)."""
        injector = self._injector
        with self._condition:
            if self._done:
                raise ForceError("putwork after the pool terminated")
            self._items.append(item)
            self.total_put += 1
            if len(self._items) > self.max_depth:
                self.max_depth = len(self._items)
            if self._tracer is not None:
                self._tracer.record("askfor", self._name, "put",
                                    depth=len(self._items))
            if injector is None or \
                    not injector.swallow_notify("askfor.put", self._name):
                self._condition.notify()
        if injector is not None:
            # Outside the lock: a fault here models a producer that
            # crashed right after publishing work.
            injector.fire("askfor.put", self._name)

    def get(self) -> tuple[bool, Any]:
        """Ask for work: (True, item), or (False, None) at termination.

        A call to ``get`` also marks the caller's previous item (if
        any) complete — matching the Force askfor loop structure where
        each worker alternates get/process.  Queued items are drained
        even after termination was declared, so nothing is dropped.
        """
        tracer = self._tracer
        with self._condition:
            if self._holders_includes_me():
                self._holders -= 1
                self._release_me()
                self._condition.notify_all()
            wait_started: float | None = None
            while True:
                if self._cancel is not None:
                    self._cancel.check()
                if self._items:
                    self._holders += 1
                    self._mark_me_holder()
                    self.total_got += 1
                    item = self._items.popleft()
                    if tracer is not None:
                        self._trace_wait_end(wait_started)
                        tracer.record("askfor", self._name, "got",
                                      depth=len(self._items))
                    break
                if self._done or self._holders == 0:
                    self._done = True
                    self._condition.notify_all()
                    if tracer is not None:
                        self._trace_wait_end(wait_started)
                        tracer.record("askfor", self._name, "terminated")
                    return False, None
                if tracer is not None and wait_started is None:
                    wait_started = monotonic()
                    tracer.mark_parked("askfor", self._name)
                self._wait_for_change()
        if self._injector is not None:
            # Outside the lock, after the item was handed out: a
            # ``die`` here kills the worker *mid-chunk*, stranding the
            # holder count — the case dead-holder detection covers.
            self._injector.fire("askfor.got", self._name)
        return True, item

    def _wait_for_change(self) -> None:
        """Block (condition held) until the pool state may have moved.

        Cancel-aware waits revalidate periodically and run the
        dead-holder hazard, so a lost wakeup or a worker that died
        holding an item cannot hang the termination protocol.
        """
        if self._cancel is None:
            self._condition.wait()
            return
        self._cancel.wait_for(
            self._condition,
            lambda: bool(self._items) or self._done or self._holders == 0,
            what=self._describe(),
            hazard=self._dead_holder_hazard)

    def _dead_holder_hazard(self) -> ForceWorkerDied | None:
        """A holder thread that died strands the pool: poison it."""
        for ident, thread in list(self._holder_threads.items()):
            if not thread.is_alive():
                del self._holder_threads[ident]
                self._holders -= 1
                if self._tracer is not None:
                    self._tracer.record("askfor", self._name,
                                        "dead-holder",
                                        proc=_me_of_thread(thread))
                return ForceWorkerDied(
                    _me_of_thread(thread), self._describe(),
                    detail="died while holding a work item")
        return None

    def _trace_wait_end(self, wait_started: float | None) -> None:
        """Close an open blocked-wait span (tracer known present)."""
        if wait_started is None:
            return
        tracer = self._tracer
        tracer.clear_parked()
        waited = monotonic() - wait_started
        tracer.record("askfor", self._name, "wait", phase="X",
                      ts=tracer.now() - waited, dur=waited)

    # -- holder tracking (thread-identity based) -----------------------
    def _mark_me_holder(self) -> None:
        self._holder_threads[threading.get_ident()] = \
            threading.current_thread()

    def _holders_includes_me(self) -> bool:
        return threading.get_ident() in self._holder_threads

    def _release_me(self) -> None:
        self._holder_threads.pop(threading.get_ident(), None)

    def __iter__(self) -> Iterator[Any]:
        """Iterate work items until global termination."""
        while True:
            got, item = self.get()
            if not got:
                return
            yield item
