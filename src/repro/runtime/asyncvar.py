"""Asynchronous (full/empty) variables for the native runtime (§3.4).

An :class:`AsyncVariable` carries a value plus a full/empty state:

* ``produce(v)`` waits for empty, writes, sets full;
* ``consume()`` waits for full, reads, sets empty;
* ``copy()`` waits for full, reads, leaves full;
* ``void()`` forces empty regardless of state;
* ``isfull`` tests the state without blocking.

On the HEP this was a hardware bit per memory cell; elsewhere the Force
used two locks per variable.  Here a condition variable provides the
same atomic state transition semantics.

Variables created through a :class:`~repro.runtime.force.Force` carry
the force's :class:`~repro.runtime.cancel.CancelToken`, so a wait for a
partner that died raises ``ForceCancelled`` instead of hanging (and
waits revalidate their predicate periodically, so a lost wakeup delays
a waiter by at most one revalidation slice rather than forever), an
optional ``on_block`` hook that reports time spent blocked (the stats
layer's asyncvar blocked-time metric), and an optional
:class:`~repro.trace.collector.TraceCollector` that records every
blocked ``produce``/``consume``/``copy`` as a complete trace span and
marks the waiter parked for the stall watchdog.
"""

from __future__ import annotations

import threading
from time import monotonic
from typing import TYPE_CHECKING, Any, Callable

from repro._util.errors import ForceError
from repro.runtime.cancel import CancelToken

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.trace.collector import TraceCollector


class AsyncVariable:
    """One full/empty cell."""

    __slots__ = ("_value", "_full", "_condition", "_cancel", "_on_block",
                 "_tracer", "_injector", "_name")

    def __init__(self, value: Any = None, *, full: bool = False,
                 cancel: CancelToken | None = None,
                 on_block: Callable[[float], None] | None = None,
                 tracer: "TraceCollector | None" = None,
                 injector: "FaultInjector | None" = None,
                 name: str = "") -> None:
        self._value = value
        self._full = full
        self._condition = threading.Condition()
        self._cancel = cancel
        self._on_block = on_block
        self._tracer = tracer
        self._injector = injector
        self._name = name
        if cancel is not None:
            cancel.register(self._condition)

    def _fire(self, op: str) -> None:
        """Injection hook at operation start (no-op without a plan)."""
        if self._injector is not None:
            self._injector.fire(f"asyncvar.{op}", self._name)

    def _notify_all(self, op: str) -> None:
        """State-change wakeup; a lost-wakeup fault swallows it once
        (waiters still progress via the revalidating wait)."""
        if self._injector is not None and \
                self._injector.swallow_notify(f"asyncvar.{op}",
                                              self._name):
            return
        self._condition.notify_all()

    @property
    def isfull(self) -> bool:
        with self._condition:
            return self._full

    def _await(self, predicate: Callable[[], bool],
               timeout: float | None, failure: str,
               op: str = "wait") -> None:
        """Wait (condition held) until predicate; cancel-, stats- and
        trace-aware.  The hooks fire only when the caller actually
        blocked, so a fast-path produce/consume records nothing."""
        if predicate():
            return
        tracer = self._tracer
        observed = self._on_block is not None or tracer is not None
        started = monotonic() if observed else 0.0
        if tracer is not None:
            tracer.mark_parked("asyncvar", self._name)
        try:
            if self._cancel is None:
                satisfied = self._condition.wait_for(predicate,
                                                     timeout=timeout)
            else:
                what = f"asyncvar '{self._name}'" if self._name \
                    else "asyncvar"
                satisfied = self._cancel.wait_for(self._condition,
                                                  predicate, timeout,
                                                  what=what)
            if not satisfied:
                raise ForceError(failure)
        finally:
            if tracer is not None:
                tracer.clear_parked()
                waited = monotonic() - started
                tracer.record("asyncvar", self._name, op, phase="X",
                              ts=tracer.now() - waited, dur=waited)
            if self._on_block is not None:
                self._on_block(monotonic() - started)

    def produce(self, value: Any, *, timeout: float | None = None) -> None:
        """Wait for empty, write ``value``, set full."""
        self._fire("produce")
        with self._condition:
            self._await(lambda: not self._full, timeout,
                        "produce timed out (variable stayed full)",
                        op="produce")
            self._value = value
            self._full = True
            self._notify_all("produce")

    def consume(self, *, timeout: float | None = None) -> Any:
        """Wait for full, read, set empty."""
        self._fire("consume")
        with self._condition:
            self._await(lambda: self._full, timeout,
                        "consume timed out (variable stayed empty)",
                        op="consume")
            value = self._value
            self._full = False
            self._notify_all("consume")
            return value

    def copy(self, *, timeout: float | None = None) -> Any:
        """Wait for full, read, leave full."""
        self._fire("copy")
        with self._condition:
            self._await(lambda: self._full, timeout,
                        "copy timed out (variable stayed empty)",
                        op="copy")
            return self._value

    def void(self) -> None:
        """Set the state to empty regardless of its previous state."""
        self._fire("void")
        with self._condition:
            self._full = False
            self._notify_all("void")


class AsyncArray:
    """An array of full/empty cells (HEP-style per-element state)."""

    def __init__(self, size: int, *,
                 cancel: CancelToken | None = None,
                 on_block: Callable[[float], None] | None = None,
                 tracer: "TraceCollector | None" = None,
                 injector: "FaultInjector | None" = None,
                 name: str = "") -> None:
        if size <= 0:
            raise ForceError("AsyncArray size must be positive")
        self._cells = [AsyncVariable(cancel=cancel, on_block=on_block,
                                     tracer=tracer, injector=injector,
                                     name=f"{name}[{index}]" if name
                                     else "")
                       for index in range(size)]

    def __len__(self) -> int:
        return len(self._cells)

    def __getitem__(self, index: int) -> AsyncVariable:
        return self._cells[index]

    def produce(self, index: int, value: Any, **kw) -> None:
        self._cells[index].produce(value, **kw)

    def consume(self, index: int, **kw) -> Any:
        return self._cells[index].consume(**kw)

    def copy(self, index: int, **kw) -> Any:
        return self._cells[index].copy(**kw)

    def void_all(self) -> None:
        for cell in self._cells:
            cell.void()
