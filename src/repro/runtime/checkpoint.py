"""Barrier-epoch checkpointing: snapshots at the consistent cut.

The paper's barrier quiesces *all* shared state: every process of the
force is parked inside the episode while the single-process barrier
body runs, so that body sees COMMON storage, work pools and full/empty
variables with no write in flight — a consistent global cut.  And
because a Force program never names specific processes, the state at
that cut is **independent of NPROC**: a snapshot taken there can be
re-materialized later under a different worker count (the elastic
restart of :mod:`repro.runtime.supervisor`).

``Force(..., checkpoint=CheckpointPolicy(every_n_barriers=k, dir=d))``
arms the hook on both backends: every k-th completed barrier episode,
the process that runs the (empty or user) barrier section serializes
every shared construct — shared counters and arrays, askfor monitor
state, full/empty variables, plus the barrier epoch itself — into a
versioned, integrity-hashed JSON document under ``d``.  Array payloads
are raw little-endian bytes (base64), so a restored array is
**bit-identical** to the captured one; the SHA-256 over the canonical
payload both guards the file against corruption and doubles as a state
digest for differential oracles (two runs whose final states hash
equal are bitwise equal).

The recoverable-program contract: a program that wants to resume from
a snapshot (rather than merely restart) must keep *all* cross-phase
state — including its own progress counters — in shared constructs,
and each barrier-delimited phase must be a deterministic function of
the state at its opening barrier.  Then re-running the program over a
restored snapshot simply fast-forwards through completed phases (their
guards read the restored progress) and recomputes the interrupted
phase from its last consistent cut.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import re
import tempfile
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro._util.errors import ForceError

#: bump when the document layout changes; ``validate_checkpoint``
#: rejects every other value.
CHECKPOINT_SCHEMA = 1

#: construct kinds a snapshot can carry
CONSTRUCT_KINDS = ("counter", "array", "asyncvar", "asyncarray",
                   "askfor")

_FILENAME = re.compile(r"^ckpt-(\d{8})\.json$")

#: JSON-serializable scalar types allowed in counters, async values
#: and askfor items (numpy scalars are normalized on capture)
_SCALARS = (bool, int, float, str, type(None))


class CheckpointError(ForceError):
    """A snapshot could not be captured, written, read or applied."""


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where to checkpoint: every n-th barrier episode.

    ``every_n_barriers=1`` snapshots at every episode (maximum
    recoverability, maximum overhead); larger values trade replayed
    work on recovery for cheaper fault-free runs.
    """

    every_n_barriers: int
    dir: str

    def __post_init__(self) -> None:
        if self.every_n_barriers < 1:
            raise CheckpointError(
                "CheckpointPolicy.every_n_barriers must be >= 1")
        if not self.dir:
            raise CheckpointError("CheckpointPolicy.dir must be set")


# ----------------------------------------------------------------------
# scalar / array normalization
# ----------------------------------------------------------------------
def _json_scalar(value: Any, where: str) -> Any:
    """Normalize ``value`` to a JSON scalar (or fail with context)."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, _SCALARS):
        return value
    raise CheckpointError(
        f"{where} holds {type(value).__name__!r}, which a checkpoint "
        "cannot serialize (shared scalars must be JSON scalars)")


def array_entry(name: str, array: np.ndarray) -> dict[str, Any]:
    """A shared array as a snapshot construct (bit-exact payload)."""
    contiguous = np.ascontiguousarray(array)
    return {
        "name": name,
        "kind": "array",
        "dtype": str(contiguous.dtype),
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def counter_entry(name: str, value: Any) -> dict[str, Any]:
    return {"name": name, "kind": "counter",
            "value": _json_scalar(value, f"shared counter '{name}'")}


def asyncvar_entry(name: str, full: bool, value: Any) -> dict[str, Any]:
    return {"name": name, "kind": "asyncvar", "full": bool(full),
            "value": _json_scalar(value, f"asyncvar '{name}'")
            if full else None}


def asyncarray_entry(name: str,
                     cells: list[tuple[bool, Any]]) -> dict[str, Any]:
    return {"name": name, "kind": "asyncarray",
            "cells": [[bool(full),
                       _json_scalar(value, f"asyncarray '{name}'")
                       if full else None]
                      for full, value in cells]}


def askfor_entry(name: str, items: list, *, total_put: int,
                 total_got: int, max_depth: int,
                 done: bool) -> dict[str, Any]:
    return {
        "name": name, "kind": "askfor",
        "items": [_json_scalar(item, f"askfor '{name}' item")
                  for item in items],
        "total_put": int(total_put), "total_got": int(total_got),
        "max_depth": int(max_depth), "done": bool(done),
    }


def decode_array(entry: dict[str, Any]) -> np.ndarray:
    """Re-materialize an array construct, bit-identical."""
    raw = base64.b64decode(entry["data"].encode("ascii"))
    array = np.frombuffer(raw, dtype=np.dtype(entry["dtype"]))
    return array.reshape(entry["shape"]).copy()


# ----------------------------------------------------------------------
# the document
# ----------------------------------------------------------------------
def _payload_bytes(payload: dict[str, Any]) -> bytes:
    """Canonical encoding the integrity hash is computed over."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def build_checkpoint(*, epoch: int, nproc: int, backend: str,
                     constructs: list[dict[str, Any]]) -> dict[str, Any]:
    """Assemble a versioned, integrity-hashed snapshot document."""
    payload = {"constructs": sorted(constructs,
                                    key=lambda e: e["name"])}
    return {
        "schema": CHECKPOINT_SCHEMA,
        "kind": "force-checkpoint",
        "epoch": int(epoch),
        "nproc": int(nproc),
        "backend": backend,
        "payload": payload,
        "sha256": hashlib.sha256(_payload_bytes(payload)).hexdigest(),
    }


def state_digest(doc: dict[str, Any]) -> str:
    """The snapshot's state hash — equal digests ⇔ bitwise-equal state.

    The digest covers only the construct payload (not epoch, nproc or
    backend), so it is exactly the differential-oracle comparator: a
    recovered run and the fault-free run agree iff their final-state
    digests agree.
    """
    return hashlib.sha256(_payload_bytes(doc["payload"])).hexdigest()


def validate_checkpoint(doc: Any) -> list[str]:
    """Schema-check a snapshot document; [] when it is well-formed."""
    problems: list[str] = []

    def expect(ok: bool, message: str) -> None:
        if not ok:
            problems.append(message)

    if not isinstance(doc, dict):
        return ["checkpoint is not an object"]
    expect(doc.get("schema") == CHECKPOINT_SCHEMA,
           f"schema is {doc.get('schema')!r}, "
           f"expected {CHECKPOINT_SCHEMA}")
    expect(doc.get("kind") == "force-checkpoint",
           "kind is not 'force-checkpoint'")
    expect(isinstance(doc.get("epoch"), int) and doc.get("epoch", -1) >= 0,
           "epoch is not a non-negative integer")
    expect(isinstance(doc.get("nproc"), int) and doc.get("nproc", 0) >= 1,
           "nproc is not a positive integer")
    expect(isinstance(doc.get("backend"), str), "backend is not a string")
    expect(isinstance(doc.get("sha256"), str), "sha256 is not a string")
    payload = doc.get("payload")
    if not isinstance(payload, dict) or \
            not isinstance(payload.get("constructs"), list):
        problems.append("payload.constructs is not a list")
        return problems
    seen: set[str] = set()
    for index, entry in enumerate(payload["constructs"]):
        where = f"constructs[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} is not an object")
            continue
        name = entry.get("name")
        expect(isinstance(name, str) and name != "",
               f"{where} has no name")
        if name in seen:
            problems.append(f"{where} duplicates name {name!r}")
        seen.add(name)
        kind = entry.get("kind")
        if kind not in CONSTRUCT_KINDS:
            problems.append(f"{where} has unknown kind {kind!r}")
            continue
        if kind == "array":
            expect(isinstance(entry.get("dtype"), str),
                   f"{where} array has no dtype")
            expect(isinstance(entry.get("shape"), list),
                   f"{where} array has no shape")
            expect(isinstance(entry.get("data"), str),
                   f"{where} array has no data")
        elif kind == "asyncarray":
            expect(isinstance(entry.get("cells"), list),
                   f"{where} asyncarray has no cells")
        elif kind == "askfor":
            expect(isinstance(entry.get("items"), list),
                   f"{where} askfor has no items")
            for field in ("total_put", "total_got", "max_depth"):
                expect(isinstance(entry.get(field), int),
                       f"{where} askfor {field} is not an integer")
            expect(isinstance(entry.get("done"), bool),
                   f"{where} askfor done is not a bool")
        elif kind == "asyncvar":
            expect(isinstance(entry.get("full"), bool),
                   f"{where} asyncvar full is not a bool")
    if not problems and doc["sha256"] != state_digest(doc):
        problems.append("sha256 does not match the payload "
                        "(corrupt or tampered snapshot)")
    return problems


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------
def checkpoint_filename(epoch: int) -> str:
    return f"ckpt-{epoch:08d}.json"


def write_checkpoint(directory: str, doc: dict[str, Any]) -> str:
    """Atomically write ``doc`` under ``directory``; returns the path.

    Write-then-rename keeps a reader (or a crash mid-write) from ever
    observing a torn snapshot: the file either exists complete or not
    at all — and a torn rename survivor fails the integrity hash.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, checkpoint_filename(doc["epoch"]))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_checkpoint(path: str) -> dict[str, Any]:
    """Load one snapshot, verifying schema and integrity hash."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") \
            from exc
    problems = validate_checkpoint(doc)
    if problems:
        raise CheckpointError(
            f"{path} is not a valid checkpoint: {problems[0]}")
    return doc


def latest_checkpoint(directory: str) -> str | None:
    """Path of the newest *valid* snapshot in ``directory`` (or None).

    Corrupt or torn files are skipped, not fatal: recovery falls back
    to the newest snapshot that still verifies, and to a from-scratch
    restart when none does.
    """
    try:
        names = os.listdir(directory)
    except OSError:
        return None
    epochs: list[tuple[int, str]] = []
    for name in names:
        match = _FILENAME.match(name)
        if match:
            epochs.append((int(match.group(1)),
                           os.path.join(directory, name)))
    for _epoch, path in sorted(epochs, reverse=True):
        try:
            load_checkpoint(path)
        except CheckpointError:
            continue
        return path
    return None
