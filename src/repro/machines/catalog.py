"""The six machines the Force was ported to (§2, §4 of the paper).

Cycle costs are stylised relative magnitudes consistent with the
paper's qualitative claims (fork is expensive, HEP process creation is
a subroutine call, OS locks cost far more than spinlocks) and with
period literature; they are not measured hardware numbers.
"""

from __future__ import annotations

from repro._util.errors import MachineError
from repro.machines.model import (
    CostTable,
    LockType,
    MachineModel,
    ProcessModel,
    SharingBinding,
)

#: Denelcor HEP: hardware full/empty bit on every memory cell, process
#: creation by subroutine call — the machine the Force grew up on.
HEP = MachineModel(
    name="HEP",
    vendor="Denelcor",
    processors=16,
    process_model=ProcessModel.SUBROUTINE_SPAWN,
    lock_type=LockType.HARDWARE_FE,
    sharing_binding=SharingBinding.COMPILE_TIME,
    page_size=0,
    costs=CostTable(
        lock_acquire=2,
        lock_release=2,
        spin_retry=1,
        syscall_overhead=0,
        context_switch=20,
        process_create=60,          # "create processes with a subroutine call"
        shared_access_penalty=1,
    ),
)

#: Flexible Flex/32: compile-time sharing like the HEP, but a combined
#: spin-then-syscall lock.
FLEX_32 = MachineModel(
    name="Flex/32",
    vendor="Flexible Computer",
    processors=8,
    process_model=ProcessModel.UNIX_FORK,
    lock_type=LockType.COMBINED,
    sharing_binding=SharingBinding.COMPILE_TIME,
    page_size=0,
    combined_spin_limit=120,
    costs=CostTable(
        lock_acquire=12,
        lock_release=10,
        spin_retry=6,
        syscall_overhead=500,
        context_switch=300,
        process_create=12_000,
        shared_access_penalty=3,
    ),
)

#: Encore Multimax: run-time shared pages; the Force pads the shared
#: area at both ends to keep private data off shared pages.
ENCORE_MULTIMAX = MachineModel(
    name="Encore Multimax",
    vendor="Encore",
    processors=20,
    process_model=ProcessModel.UNIX_FORK,
    lock_type=LockType.SPIN,
    sharing_binding=SharingBinding.RUN_TIME,
    page_size=4096,
    shared_padded_both_ends=True,
    costs=CostTable(
        lock_acquire=10,
        lock_release=8,
        spin_retry=7,
        syscall_overhead=600,
        context_switch=350,
        process_create=15_000,
        shared_access_penalty=2,
    ),
)

#: Sequent Balance: link-time sharing via generated startup routines and
#: a two-run linker-command pipe.
SEQUENT_BALANCE = MachineModel(
    name="Sequent Balance",
    vendor="Sequent",
    processors=12,
    process_model=ProcessModel.UNIX_FORK,
    lock_type=LockType.SPIN,
    sharing_binding=SharingBinding.LINK_TIME,
    page_size=4096,
    costs=CostTable(
        lock_acquire=11,
        lock_release=9,
        spin_retry=8,
        syscall_overhead=650,
        context_switch=400,
        process_create=16_000,
        shared_access_penalty=2,
    ),
)

#: Alliant FX/8: fork shares all data segments (only the stack is
#: private); sharing must start on a page boundary.
ALLIANT_FX8 = MachineModel(
    name="Alliant FX/8",
    vendor="Alliant",
    processors=8,
    process_model=ProcessModel.SHARED_DATA_FORK,
    lock_type=LockType.SPIN,
    sharing_binding=SharingBinding.RUN_TIME,
    page_size=8192,
    shared_starts_on_page=True,
    costs=CostTable(
        lock_acquire=6,
        lock_release=5,
        spin_retry=4,
        syscall_overhead=450,
        context_switch=250,
        process_create=4_000,       # lighter: only the stack is copied
        shared_access_penalty=1,
    ),
)

#: Cray-2: OS-managed (system call) locks, and locks are a scarce
#: resource (§4.1.3's closing remark).
CRAY_2 = MachineModel(
    name="Cray-2",
    vendor="Cray Research",
    processors=4,
    process_model=ProcessModel.UNIX_FORK,
    lock_type=LockType.SYSCALL,
    sharing_binding=SharingBinding.COMPILE_TIME,
    page_size=0,
    lock_limit=32,
    costs=CostTable(
        statement_scale=1,
        lock_acquire=30,
        lock_release=25,
        spin_retry=0,
        syscall_overhead=900,
        context_switch=500,
        process_create=25_000,
        shared_access_penalty=1,
    ),
)

#: The Python host: the seventh port, the machine this reproduction
#: actually runs on.  Real forked processes over POSIX shared memory
#: (``/dev/shm`` standing in for the Encore's shared pages), software
#: spinlocks, run-time sharing.  Costs are stylised like the others,
#: but this is the one entry whose wall clock is also measured for
#: real — by the process backend and ``force bench``'s
#: ``wall_speedup``.
PYTHON_HOST = MachineModel(
    name="Python Host",
    vendor="CPython",
    processors=8,
    process_model=ProcessModel.UNIX_FORK,
    lock_type=LockType.SPIN,
    sharing_binding=SharingBinding.RUN_TIME,
    page_size=4096,
    shared_starts_on_page=True,
    costs=CostTable(
        lock_acquire=9,
        lock_release=7,
        spin_retry=6,
        syscall_overhead=550,
        context_switch=320,
        process_create=20_000,      # fork + interpreter warm-up
        shared_access_penalty=2,
    ),
)

#: All seven ports, keyed by :attr:`MachineModel.key` — the paper's
#: six machines plus the Python host this reproduction runs on.
MACHINES: dict[str, MachineModel] = {
    m.key: m for m in
    (HEP, FLEX_32, ENCORE_MULTIMAX, SEQUENT_BALANCE, ALLIANT_FX8, CRAY_2,
     PYTHON_HOST)
}


def machine_names() -> list[str]:
    """Registry keys, in the paper's porting order."""
    return list(MACHINES)


def get_machine(name: str) -> MachineModel:
    """Look a machine up by key or (case-insensitive) display name."""
    key = name.lower().replace(" ", "-").replace("/", "")
    if key in MACHINES:
        return MACHINES[key]
    for machine in MACHINES.values():
        if machine.name.lower() == name.lower():
            return machine
    raise MachineError(
        f"unknown machine {name!r}; available: {', '.join(MACHINES)}")
