"""Shared-memory layout emulation (§4.1.2).

On the Encore, sharing happens at run time through shared pages, and
"it is in general the programmer's responsibility to ensure that shared
variables are within the shared page boundaries and that private
variables are not.  The Force relieves the programmer from this
responsibility by calculating the address of shared pages and padding
the extra space at the beginning and the end of the shared area".  The
Alliant is similar except "all sharing must start at the beginning of a
page".

This module reproduces that address arithmetic: given the shared and
private variables of a program, it lays out a data segment, inserts the
machine-required padding, and exposes invariant checks that the tests
(and experiment E1) assert for every machine.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro._util.errors import MachineError
from repro.machines.model import MachineModel, SharingBinding

#: Bytes per element for layout purposes (period 32-bit machines used
#: 4-byte numeric storage units; DOUBLE PRECISION takes two).
TYPE_SIZES = {
    "INTEGER": 4,
    "REAL": 4,
    "LOGICAL": 4,
    "DOUBLE PRECISION": 8,
    "CHARACTER": 1,
}


@dataclass(frozen=True)
class VariableSpec:
    """A variable to place: name, Fortran type keyword, element count."""

    name: str
    ftype: str = "INTEGER"
    elements: int = 1

    @property
    def size(self) -> int:
        try:
            return TYPE_SIZES[self.ftype] * self.elements
        except KeyError as exc:
            raise MachineError(f"no size for type {self.ftype!r}") from exc


@dataclass
class Placement:
    """A variable's resolved address range [start, end)."""

    spec: VariableSpec
    start: int

    @property
    def end(self) -> int:
        return self.start + self.spec.size


@dataclass
class SharedRegionPlan:
    """The computed layout: shared region bounds plus all placements."""

    machine: MachineModel
    shared_start: int
    shared_end: int               # exclusive; padded per machine rules
    shared: list[Placement] = field(default_factory=list)
    private: list[Placement] = field(default_factory=list)
    padding_bytes: int = 0

    def placement(self, name: str) -> Placement:
        for p in self.shared + self.private:
            if p.spec.name == name:
                return p
        raise MachineError(f"no variable named {name} in layout")

    # -- invariants asserted by tests and E1 ---------------------------
    def check(self) -> None:
        """Raise MachineError if any §4.1.2 constraint is violated."""
        machine = self.machine
        page = machine.page_size
        for p in self.shared:
            if not (self.shared_start <= p.start and
                    p.end <= self.shared_end):
                raise MachineError(
                    f"shared variable {p.spec.name} at [{p.start},{p.end}) "
                    f"outside shared region [{self.shared_start},"
                    f"{self.shared_end})")
        for p in self.private:
            if p.start < self.shared_end and p.end > self.shared_start:
                raise MachineError(
                    f"private variable {p.spec.name} overlaps the shared "
                    "region")
        if page and (machine.shared_starts_on_page or
                     machine.shared_padded_both_ends):
            if self.shared_start % page != 0:
                raise MachineError(
                    f"shared region starts at {self.shared_start}, not on "
                    f"a {page}-byte page boundary")
        if page and machine.shared_padded_both_ends:
            if self.shared_end % page != 0:
                raise MachineError(
                    f"shared region ends at {self.shared_end}, not on a "
                    f"page boundary")


class MemoryLayout:
    """Builds a :class:`SharedRegionPlan` for one machine.

    The data segment is laid out as: private variables, then the shared
    region (aligned/padded per machine), then remaining private
    variables would follow — we place all privates first, which yields
    the worst-case padding the paper's implementation must absorb.
    """

    def __init__(self, machine: MachineModel) -> None:
        self.machine = machine

    def plan(self, shared: list[VariableSpec],
             private: list[VariableSpec],
             *, base_address: int = 0) -> SharedRegionPlan:
        machine = self.machine
        page = machine.page_size
        cursor = base_address
        private_placements: list[Placement] = []
        for spec in private:
            cursor = _align(cursor, TYPE_SIZES.get(spec.ftype, 4))
            private_placements.append(Placement(spec, cursor))
            cursor += spec.size

        pad_before = 0
        if page and (machine.shared_starts_on_page or
                     machine.shared_padded_both_ends):
            aligned = _align(cursor, page)
            pad_before = aligned - cursor
            cursor = aligned
        shared_start = cursor

        shared_placements: list[Placement] = []
        for spec in shared:
            cursor = _align(cursor, TYPE_SIZES.get(spec.ftype, 4))
            shared_placements.append(Placement(spec, cursor))
            cursor += spec.size

        pad_after = 0
        if page and machine.shared_padded_both_ends:
            aligned = _align(cursor, page)
            pad_after = aligned - cursor
            cursor = aligned
        elif page and machine.shared_starts_on_page:
            aligned = _align(cursor, page)
            pad_after = aligned - cursor
            cursor = aligned
        shared_end = cursor

        if machine.sharing_binding is SharingBinding.COMPILE_TIME and page:
            raise MachineError(  # pragma: no cover - config sanity
                f"{machine.name}: compile-time sharing should not have "
                "page constraints")

        plan = SharedRegionPlan(
            machine=machine,
            shared_start=shared_start,
            shared_end=shared_end,
            shared=shared_placements,
            private=private_placements,
            padding_bytes=pad_before + pad_after,
        )
        return plan


def _align(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    remainder = value % alignment
    return value if remainder == 0 else value + alignment - remainder


# ----------------------------------------------------------------------
# real shared memory: the process backend's arena
# ----------------------------------------------------------------------

#: reserved header: slot 0 is the bump-allocator cursor (bytes), slot
#: 1 records the creating process's pid (the in-segment "pidfile" the
#: stale sweep is guarded by), the rest is free for backend-specific
#: control state.
ARENA_HEADER_SLOTS = 64
ARENA_HEADER_BYTES = ARENA_HEADER_SLOTS * 8
ARENA_OWNER_SLOT = 1

#: every arena segment the process backend creates is named
#: ``force-arena-<hex>`` — the namespace :func:`sweep_stale_arenas`
#: confines itself to
ARENA_PREFIX = "force-arena-"


class SharedArena:
    """One POSIX shared-memory segment with a bump allocator.

    This is the run-time analogue of :class:`SharedRegionPlan`: where
    the simulator *models* the shared-page address arithmetic, the
    process backend actually places its COMMON blocks, lock words and
    construct state in a ``multiprocessing.shared_memory`` segment and
    hands out numpy views.

    Lifecycle contract (leak-proofing is the whole point):

    * the parent creates the arena (``SharedArena(size=...)``) and is
      the only process that may :meth:`unlink` it;
    * workers either inherit the mapping over ``fork`` or
      :meth:`attach` by name, and must :meth:`close` on exit;
    * ``attach`` un-registers the segment from this process's
      ``resource_tracker`` so a dying worker can never unlink the
      parent's segment out from under its siblings (Python 3.12's
      tracker would otherwise do exactly that);
    * the parent's ``close``/``unlink`` pair runs in a ``finally`` in
      the backend, covering normal exit, injected deaths and
      cancellation alike.

    The allocator cursor itself lives *inside* the segment (header
    slot 0), so post-fork allocations made by any process stay
    consistent — callers serialise :meth:`alloc` under their own
    cross-process mutex.
    """

    def __init__(self, size: int | None = None, *,
                 name: str | None = None) -> None:
        if size is not None:
            if size <= ARENA_HEADER_BYTES:
                raise MachineError(
                    f"arena of {size} bytes cannot hold the "
                    f"{ARENA_HEADER_BYTES}-byte header")
            unique = name or f"{ARENA_PREFIX}{secrets.token_hex(6)}"
            self._shm = shared_memory.SharedMemory(
                name=unique, create=True, size=size)
            self._owner = True
            header = self._header()
            header[:] = 0
            header[0] = ARENA_HEADER_BYTES
            # The in-segment pidfile: sweep_stale_arenas only unlinks
            # segments whose recorded creator is no longer alive.
            header[ARENA_OWNER_SLOT] = os.getpid()
        elif name is not None:
            self._shm = shared_memory.SharedMemory(name=name)
            # Attaching registered the segment with this process's
            # resource tracker (no track= parameter before 3.13);
            # undo that so only the creating process ever unlinks.
            try:
                resource_tracker.unregister(
                    self._shm._name, "shared_memory")
            except Exception:       # pragma: no cover - tracker quirk
                pass
            self._owner = False
        else:
            raise MachineError("SharedArena needs size= (create) or "
                               "name= (attach)")
        self._closed = False

    # -- identity ------------------------------------------------------
    @property
    def name(self) -> str:
        """The segment name (``/dev/shm/<name>`` on Linux)."""
        return self._shm.name

    @property
    def size(self) -> int:
        return self._shm.size

    def _header(self) -> np.ndarray:
        return np.ndarray((ARENA_HEADER_SLOTS,), dtype=np.int64,
                          buffer=self._shm.buf)

    # -- allocation ----------------------------------------------------
    def alloc(self, nbytes: int, *, align: int = 8) -> int:
        """Reserve ``nbytes`` and return the offset (caller locks)."""
        header = self._header()
        offset = _align(int(header[0]), align)
        end = offset + nbytes
        if end > self.size:
            raise MachineError(
                f"shared arena exhausted: need {nbytes} bytes at "
                f"{offset}, segment is {self.size}")
        header[0] = end
        return offset

    def view(self, offset: int, count: int, dtype=np.int64) -> np.ndarray:
        """A numpy view of ``count`` items of ``dtype`` at ``offset``."""
        itemsize = np.dtype(dtype).itemsize
        if offset < 0 or offset + count * itemsize > self.size:
            raise MachineError(
                f"arena view [{offset}, {offset + count * itemsize}) "
                f"outside segment of {self.size} bytes")
        return np.ndarray((count,), dtype=dtype, buffer=self._shm.buf,
                          offset=offset)

    def alloc_view(self, count: int, dtype=np.int64,
                   *, align: int = 8) -> np.ndarray:
        """Allocate and return a zero-filled view in one step."""
        itemsize = np.dtype(dtype).itemsize
        offset = self.alloc(count * itemsize,
                            align=max(align, itemsize))
        view = self.view(offset, count, dtype)
        view[:] = 0
        return view

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:      # pragma: no cover - lingering views
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (creator only)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


def _pid_alive(pid: int) -> bool:
    """Is there a live process with this pid (that we may signal)?"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:      # pragma: no cover - exists, not ours
        return True
    return True


def sweep_stale_arenas(*, shm_dir: str = "/dev/shm",
                       prefix: str = ARENA_PREFIX) -> list[str]:
    """Unlink orphaned force arenas; returns the segment names removed.

    The parent's ``close``/``unlink`` pair runs in a ``finally``, so
    leaks need the parent itself to die un-catchably (``SIGKILL``, OOM
    kill, power loss) — exactly the failures the PR 9 supervisor
    restarts after.  This sweep makes those restarts clean: it walks
    the ``force-arena-*`` namespace and unlinks every segment whose
    in-header owner pid (the "pidfile" written at creation) no longer
    names a live process.

    Guard rails:

    * only segments under ``prefix`` are even considered;
    * a segment whose owner slot is zero (not yet initialised, or
      created by an older layout) is left alone;
    * a live owner pid — including a recycled one, the usual pidfile
      caveat — means the segment is left alone, so a sweeping process
      can never pull a mapped arena out from under a running force.

    Safe to call at any time; the process backend runs it before
    creating each new arena.
    """
    removed: list[str] = []
    try:
        names = sorted(os.listdir(shm_dir))
    except OSError:
        return removed          # no POSIX shm directory on this host
    for segment in names:
        if not segment.startswith(prefix):
            continue
        try:
            shm = shared_memory.SharedMemory(name=segment)
        except (FileNotFoundError, OSError):
            continue            # raced with its owner's cleanup
        try:
            # Attaching registered the segment with our resource
            # tracker (same quirk as SharedArena.attach); undo it so a
            # *kept* segment is not unlinked at our own exit.
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:    # pragma: no cover - tracker quirk
                pass
            header = np.ndarray((ARENA_HEADER_SLOTS,), dtype=np.int64,
                                buffer=shm.buf)
            owner = int(header[ARENA_OWNER_SLOT])
            del header          # release the buffer so close() works
            if owner > 0 and not _pid_alive(owner):
                try:
                    shm.unlink()
                except FileNotFoundError:   # pragma: no cover - race
                    continue
                removed.append(segment)
        finally:
            shm.close()
    return removed
