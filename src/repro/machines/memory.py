"""Shared-memory layout emulation (§4.1.2).

On the Encore, sharing happens at run time through shared pages, and
"it is in general the programmer's responsibility to ensure that shared
variables are within the shared page boundaries and that private
variables are not.  The Force relieves the programmer from this
responsibility by calculating the address of shared pages and padding
the extra space at the beginning and the end of the shared area".  The
Alliant is similar except "all sharing must start at the beginning of a
page".

This module reproduces that address arithmetic: given the shared and
private variables of a program, it lays out a data segment, inserts the
machine-required padding, and exposes invariant checks that the tests
(and experiment E1) assert for every machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.errors import MachineError
from repro.machines.model import MachineModel, SharingBinding

#: Bytes per element for layout purposes (period 32-bit machines used
#: 4-byte numeric storage units; DOUBLE PRECISION takes two).
TYPE_SIZES = {
    "INTEGER": 4,
    "REAL": 4,
    "LOGICAL": 4,
    "DOUBLE PRECISION": 8,
    "CHARACTER": 1,
}


@dataclass(frozen=True)
class VariableSpec:
    """A variable to place: name, Fortran type keyword, element count."""

    name: str
    ftype: str = "INTEGER"
    elements: int = 1

    @property
    def size(self) -> int:
        try:
            return TYPE_SIZES[self.ftype] * self.elements
        except KeyError as exc:
            raise MachineError(f"no size for type {self.ftype!r}") from exc


@dataclass
class Placement:
    """A variable's resolved address range [start, end)."""

    spec: VariableSpec
    start: int

    @property
    def end(self) -> int:
        return self.start + self.spec.size


@dataclass
class SharedRegionPlan:
    """The computed layout: shared region bounds plus all placements."""

    machine: MachineModel
    shared_start: int
    shared_end: int               # exclusive; padded per machine rules
    shared: list[Placement] = field(default_factory=list)
    private: list[Placement] = field(default_factory=list)
    padding_bytes: int = 0

    def placement(self, name: str) -> Placement:
        for p in self.shared + self.private:
            if p.spec.name == name:
                return p
        raise MachineError(f"no variable named {name} in layout")

    # -- invariants asserted by tests and E1 ---------------------------
    def check(self) -> None:
        """Raise MachineError if any §4.1.2 constraint is violated."""
        machine = self.machine
        page = machine.page_size
        for p in self.shared:
            if not (self.shared_start <= p.start and
                    p.end <= self.shared_end):
                raise MachineError(
                    f"shared variable {p.spec.name} at [{p.start},{p.end}) "
                    f"outside shared region [{self.shared_start},"
                    f"{self.shared_end})")
        for p in self.private:
            if p.start < self.shared_end and p.end > self.shared_start:
                raise MachineError(
                    f"private variable {p.spec.name} overlaps the shared "
                    "region")
        if page and (machine.shared_starts_on_page or
                     machine.shared_padded_both_ends):
            if self.shared_start % page != 0:
                raise MachineError(
                    f"shared region starts at {self.shared_start}, not on "
                    f"a {page}-byte page boundary")
        if page and machine.shared_padded_both_ends:
            if self.shared_end % page != 0:
                raise MachineError(
                    f"shared region ends at {self.shared_end}, not on a "
                    f"page boundary")


class MemoryLayout:
    """Builds a :class:`SharedRegionPlan` for one machine.

    The data segment is laid out as: private variables, then the shared
    region (aligned/padded per machine), then remaining private
    variables would follow — we place all privates first, which yields
    the worst-case padding the paper's implementation must absorb.
    """

    def __init__(self, machine: MachineModel) -> None:
        self.machine = machine

    def plan(self, shared: list[VariableSpec],
             private: list[VariableSpec],
             *, base_address: int = 0) -> SharedRegionPlan:
        machine = self.machine
        page = machine.page_size
        cursor = base_address
        private_placements: list[Placement] = []
        for spec in private:
            cursor = _align(cursor, TYPE_SIZES.get(spec.ftype, 4))
            private_placements.append(Placement(spec, cursor))
            cursor += spec.size

        pad_before = 0
        if page and (machine.shared_starts_on_page or
                     machine.shared_padded_both_ends):
            aligned = _align(cursor, page)
            pad_before = aligned - cursor
            cursor = aligned
        shared_start = cursor

        shared_placements: list[Placement] = []
        for spec in shared:
            cursor = _align(cursor, TYPE_SIZES.get(spec.ftype, 4))
            shared_placements.append(Placement(spec, cursor))
            cursor += spec.size

        pad_after = 0
        if page and machine.shared_padded_both_ends:
            aligned = _align(cursor, page)
            pad_after = aligned - cursor
            cursor = aligned
        elif page and machine.shared_starts_on_page:
            aligned = _align(cursor, page)
            pad_after = aligned - cursor
            cursor = aligned
        shared_end = cursor

        if machine.sharing_binding is SharingBinding.COMPILE_TIME and page:
            raise MachineError(  # pragma: no cover - config sanity
                f"{machine.name}: compile-time sharing should not have "
                "page constraints")

        plan = SharedRegionPlan(
            machine=machine,
            shared_start=shared_start,
            shared_end=shared_end,
            shared=shared_placements,
            private=private_placements,
            padding_bytes=pad_before + pad_after,
        )
        return plan


def _align(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    remainder = value % alignment
    return value if remainder == 0 else value + alignment - remainder
