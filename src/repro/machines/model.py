"""Machine model dataclasses: the axes of variation from §4.1."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class ProcessModel(Enum):
    """How a force of processes is created (§4.1.1)."""

    #: Standard UNIX fork/join: full copy of data and stack per child.
    UNIX_FORK = "unix-fork"
    #: Alliant variant: all data segments shared, only the stack copied.
    SHARED_DATA_FORK = "shared-data-fork"
    #: HEP: a subroutine call creates a process; returning ends it.
    SUBROUTINE_SPAWN = "subroutine-spawn"


class LockType(Enum):
    """The generic lock mechanism each system provides (§4.1.3)."""

    #: Spin with test&set on a shared variable (Sequent, Encore).
    SPIN = "spin"
    #: The operating system parks waiters via the scheduler (Cray).
    SYSCALL = "syscall"
    #: Spin for a bounded time, then make an OS call (Flex).
    COMBINED = "combined"
    #: Hardware full/empty access state on every memory cell (HEP).
    HARDWARE_FE = "hardware-fe"


class SharingBinding(Enum):
    """When shared memory is identified (§4.1.2)."""

    COMPILE_TIME = "compile-time"   # HEP, Flex, Cray-2
    LINK_TIME = "link-time"         # Sequent (two-run linker protocol)
    RUN_TIME = "run-time"           # Encore, Alliant (shared pages)


@dataclass(frozen=True)
class CostTable:
    """Cycle costs charged by the simulator.

    Values are stylised (relative magnitudes from the paper's
    qualitative statements and period literature), not measured
    hardware figures; EXPERIMENTS.md discusses calibration.
    """

    #: Multiplier applied to every Fortran statement's node-count weight.
    statement_scale: int = 1
    #: Acquiring an uncontended lock.
    lock_acquire: int = 10
    #: Releasing a lock.
    lock_release: int = 8
    #: One test&set retry while spinning (burned CPU per poll).
    spin_retry: int = 6
    #: Entering the OS for a syscall lock (both acquire and wake paths).
    syscall_overhead: int = 400
    #: Rescheduling a parked process.
    context_switch: int = 250
    #: Creating one process in the force.
    process_create: int = 2_000
    #: Extra latency on each shared-memory synchronization access.
    shared_access_penalty: int = 2

    def scaled(self, **overrides) -> "CostTable":
        """Return a copy with selected fields replaced (for ablations)."""
        from dataclasses import replace
        return replace(self, **overrides)


@dataclass(frozen=True)
class MachineModel:
    """A complete description of one target multiprocessor."""

    name: str
    vendor: str
    processors: int                 #: processors in our reference config
    process_model: ProcessModel
    lock_type: LockType
    sharing_binding: SharingBinding
    page_size: int                  #: bytes; 0 = no page constraints
    #: Shared region must begin exactly on a page boundary (Alliant).
    shared_starts_on_page: bool = False
    #: Shared region padded at both ends to page boundaries (Encore).
    shared_padded_both_ends: bool = False
    #: Maximum number of lock variables (0 = unlimited).  On some
    #: machines locks are scarce resources (§4.1.3).
    lock_limit: int = 0
    #: Spin budget (cycles) before a COMBINED lock falls back to the OS.
    combined_spin_limit: int = 0
    costs: CostTable = field(default_factory=CostTable)

    def __post_init__(self) -> None:
        if self.processors <= 0:
            raise ValueError(f"{self.name}: processors must be positive")
        if self.lock_type is LockType.COMBINED and \
                self.combined_spin_limit <= 0:
            raise ValueError(f"{self.name}: combined lock needs a spin "
                             "limit")

    @property
    def key(self) -> str:
        """Short lower-case identifier (CLI / registry key)."""
        return self.name.lower().replace(" ", "-").replace("/", "")

    def describe(self) -> str:
        """One-paragraph human description (used by the CLI)."""
        return (f"{self.vendor} {self.name}: {self.processors} processors, "
                f"{self.process_model.value} process creation, "
                f"{self.lock_type.value} locks, "
                f"{self.sharing_binding.value} memory sharing")
