"""Models of the six shared-memory multiprocessors hosting the Force.

§4.1 of the paper catalogues exactly what varies between machines:

* **process creation** — UNIX fork/join with full data+stack copy
  (Encore, Sequent), a fork variant sharing all data segments (Alliant),
  or cheap subroutine-call process creation (HEP);
* **lock support** — software test&set spinlocks (Sequent, Encore),
  operating-system call locks (Cray), a combined spin-then-syscall lock
  (Flex), or hardware full/empty bits on every memory cell (HEP);
* **shared-memory binding time** — compile time (HEP, Flex), link time
  via a two-run startup/linker protocol (Sequent), or run time with
  shared pages and padding (Encore; Alliant additionally requires
  sharing to begin on a page boundary).

Each :class:`MachineModel` captures those axes plus a cycle-cost table
used by the discrete-event simulator, so lock contention, process
creation overhead and barrier scaling take machine-specific shapes.
"""

from repro.machines.model import (
    CostTable,
    LockType,
    MachineModel,
    ProcessModel,
    SharingBinding,
)
from repro.machines.catalog import (
    ALLIANT_FX8,
    CRAY_2,
    ENCORE_MULTIMAX,
    FLEX_32,
    HEP,
    MACHINES,
    PYTHON_HOST,
    SEQUENT_BALANCE,
    get_machine,
    machine_names,
)
from repro.machines.memory import (
    MemoryLayout,
    SharedArena,
    SharedRegionPlan,
)
from repro._util.errors import MachineError

__all__ = [
    "CostTable",
    "LockType",
    "MachineModel",
    "ProcessModel",
    "SharingBinding",
    "ALLIANT_FX8",
    "CRAY_2",
    "ENCORE_MULTIMAX",
    "FLEX_32",
    "HEP",
    "MACHINES",
    "PYTHON_HOST",
    "SEQUENT_BALANCE",
    "get_machine",
    "machine_names",
    "MemoryLayout",
    "SharedArena",
    "SharedRegionPlan",
    "MachineError",
]
