"""The Force runtime library: the CALLs macro-expanded code makes.

Every name here corresponds to a runtime facility one of the paper's
machines provided: lock primitives (named per machine — calling
``SPINLK`` on the Cray is a porting bug and is rejected), hardware
full/empty operations on the HEP, process creation and join, shared-
block registration for the link-/run-time binding machines, and the
Askfor work queue.

Subroutines are implemented as generators yielding simulator events;
functions (``FRCISF``, ``FRCTIM``) are non-blocking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro._util.errors import SimulationError
from repro.fortran.interp import (
    ArgRef,
    ArrayRef,
    Cell,
    CellRef,
    CommonProvider,
    Cost,
    ElementRef,
    ExternalCallHandler,
    Frame,
    Interpreter,
    StopSignal,
)
from repro.fortran.parser import Program
from repro.fortran.values import FArray
from repro.machines.model import LockType, MachineModel, ProcessModel
from repro.sim.events import AcquireLock, Block, HaltSim, ReleaseLock, Wake
from repro.sim.lock import SimLock
from repro.sim.scheduler import Scheduler, SimProcess

#: lock primitive names per lock type — the machine dependence of §4.1.3
LOCK_CALL_NAMES = {
    LockType.SPIN: ("SPINLK", "SPINUN"),
    LockType.SYSCALL: ("SYSLCK", "SYSUNL"),
    LockType.COMBINED: ("CMBLCK", "CMBUNL"),
    LockType.HARDWARE_FE: ("HEPLKW", "HEPLKS"),
}
_ALL_LOCK_NAMES = {name for pair in LOCK_CALL_NAMES.values() for name in pair}


class SharingRegistry:
    """Which COMMON blocks are shared — filled by directives (compile
    time), the linker protocol (link time) or FRCSHB calls (run time)."""

    def __init__(self) -> None:
        self.shared_blocks: set[str] = set()
        self.registration_log: list[str] = []

    def register(self, name: str) -> None:
        name = name.upper()
        if name not in self.shared_blocks:
            self.shared_blocks.add(name)
            self.registration_log.append(name)

    def is_shared(self, name: str) -> bool:
        return name.upper() in self.shared_blocks


class ForceCommonProvider(CommonProvider):
    """COMMON storage with per-machine sharing semantics.

    Shared blocks are global.  Private blocks are keyed per process;
    on UNIX-fork machines a child starts with a copy of its parent's
    private blocks, on the HEP's subroutine-spawn model they start
    fresh, and on the Alliant *all* data segments are shared — a real
    portability wrinkle the Force handles by mapping Private
    declarations to (stack) locals rather than commons.
    """

    def __init__(self, machine: MachineModel,
                 registry: SharingRegistry) -> None:
        super().__init__()
        self.machine = machine
        self.registry = registry
        self._private: dict[tuple[int, str], list] = {}
        #: observed layouts for the post-run memory plan
        self.layouts: dict[str, list] = {}

    def get_block(self, name: str, layout, frame) -> list:
        self.layouts.setdefault(name, layout)
        shared = self.registry.is_shared(name) or \
            self.machine.process_model is ProcessModel.SHARED_DATA_FORK
        if shared:
            return super().get_block(name, layout, frame)
        pid = self._pid_of(frame)
        key = (pid, name)
        block = self._private.get(key)
        if block is None:
            block = [self._make_slot(ftype, bounds)
                     for (_n, ftype, bounds) in layout]
            self._private[key] = block
            return block
        if len(block) != len(layout):
            raise SimulationError(
                f"private COMMON /{name}/ layout mismatch")
        return [self._adapt_slot(slot, ftype, bounds, name)
                for slot, (_n, ftype, bounds) in zip(block, layout)]

    def fork_copy(self, parent_pid: int, child_pid: int) -> None:
        """UNIX fork: the child gets a copy of parent private blocks."""
        for (pid, name), block in list(self._private.items()):
            if pid != parent_pid:
                continue
            copied = []
            for slot in block:
                if isinstance(slot, Cell):
                    twin = Cell(slot.ftype, slot.value)
                    twin.full = slot.full
                    copied.append(twin)
                else:
                    copied.append(slot.copy())
            self._private[(child_pid, name)] = copied

    @staticmethod
    def _pid_of(frame) -> int:
        process = getattr(frame, "process", None)
        return process.pid if process is not None else 0


def _storage_key(ref: ArgRef):
    """Identity of the storage a reference names (for locks/async).

    Array identity uses the underlying buffer address and the flat
    storage position — NOT the FArray wrapper — because every process
    binds a COMMON block through its own reinterpret() view; the locks
    and full/empty state must agree across all views.
    """
    if isinstance(ref, CellRef):
        return ("cell", id(ref.cell))
    if isinstance(ref, ElementRef):
        return ("elem", ref.farray.storage_id(),
                ref.farray.flat_index(ref.subscripts))
    if isinstance(ref, ArrayRef):
        return ("array", ref.farray.storage_id())
    raise SimulationError("synchronization on a non-variable argument")


@dataclass
class WorkQueue:
    """The Askfor monitor's work pool [LO83]."""

    name: str
    capacity: int
    items: list = field(default_factory=list)
    holding: set = field(default_factory=set)
    done: bool = False
    total_put: int = 0
    total_got: int = 0


class ForceRuntime(ExternalCallHandler):
    """External-call handler bound to one scheduler + machine."""

    def __init__(self, scheduler: Scheduler, machine: MachineModel,
                 nproc: int, program: Program,
                 registry: SharingRegistry | None = None) -> None:
        self.scheduler = scheduler
        self.machine = machine
        self.nproc = nproc
        self.program = program
        self.registry = registry or SharingRegistry()
        self.provider = ForceCommonProvider(machine, self.registry)
        self.interpreter: Interpreter | None = None
        self._locks: dict = {}
        self._init_locked_storage: set[int] = set()
        self._async_pairs: dict = {}        # key(V) -> (E ref base, F ref base)
        self._async_inited: set = set()
        self._queues: dict[str, WorkQueue] = {}
        self._children = 0
        self._children_done = 0
        self._lock_names = LOCK_CALL_NAMES[machine.lock_type]
        self.page_plan_requested = False

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    _SUBROUTINES = frozenset({
        "SPINLK", "SPINUN", "SYSLCK", "SYSUNL", "CMBLCK", "CMBUNL",
        "HEPLKW", "HEPLKS", "FRCLKI", "FRCVOD", "FRCAIN",
        "HEPPRD", "HEPCON", "HEPCPY", "HEPVOD", "HEPVIN",
        "FRKALL", "HEPSPN", "FRCJON", "FRCSHB", "FRCPAG",
        "FRCQIN", "FRCQPT", "FRCQGT", "ZZSTRT",
    })
    _FUNCTIONS = frozenset({"FRCISF", "FRCTIM"})

    def is_external(self, name: str) -> bool:
        return name in self._SUBROUTINES and \
            not (name == "ZZSTRT" and "ZZSTRT" in self.program.units)

    def is_external_function(self, name: str) -> bool:
        return name in self._FUNCTIONS

    def call(self, name: str, args: list[ArgRef], frame: Frame) -> Iterator:
        if name in _ALL_LOCK_NAMES:
            yield from self._lock_call(name, args, frame)
            return
        method = getattr(self, "_sub_" + name.lower(), None)
        if method is None:   # pragma: no cover - guarded by is_external
            raise SimulationError(f"no runtime subroutine {name}")
        yield from method(args, frame)

    def call_function(self, name: str, args: list[ArgRef], frame: Frame):
        if name == "FRCISF":
            return self._fn_isfull(args)
        if name == "FRCTIM":
            process = frame.process
            return int(process.clock) if process is not None else 0
        raise SimulationError(f"no runtime function {name}")

    # ------------------------------------------------------------------
    # locks
    # ------------------------------------------------------------------
    def _lock_call(self, name: str, args: list[ArgRef],
                   frame: Frame | None = None) -> Iterator:
        lock_name, unlock_name = self._lock_names
        if name not in (lock_name, unlock_name):
            raise SimulationError(
                f"lock primitive {name} is not available on "
                f"{self.machine.name} (expected {lock_name}/{unlock_name}) "
                "— was this program expanded for a different machine?")
        if len(args) != 1:
            raise SimulationError(f"{name} expects one lock variable")
        lock = self._lock_for(args[0], frame)
        if name == lock_name:
            yield AcquireLock(lock)
        else:
            yield ReleaseLock(lock)

    def _lock_for(self, ref: ArgRef, frame: Frame | None = None) -> SimLock:
        key = _storage_key(ref)
        lock = self._locks.get(key)
        if lock is None:
            lock = self.scheduler.new_lock(self._lock_label(ref, frame))
            # Async E-locks start locked (the empty state).
            if self._backing_id(ref) in self._init_locked_storage:
                lock.locked = True
            self._locks[key] = lock
        return lock

    @staticmethod
    def _lock_label(ref: ArgRef, frame: Frame | None) -> str:
        """Best-effort Fortran name for a lock variable (trace label)."""
        if frame is not None:
            target = getattr(ref, "cell", None) or \
                getattr(ref, "farray", None)
            for name, storage in frame.vars.items():
                if storage is target and not name.startswith("%"):
                    if isinstance(ref, ElementRef):
                        subs = ",".join(str(s) for s in ref.subscripts)
                        return f"{name}({subs})"
                    return name
        if isinstance(ref, ElementRef):
            return f"elem{id(ref.farray) % 10_000}{ref.subscripts}"
        return f"var{id(getattr(ref, 'cell', ref)) % 10_000}"

    @staticmethod
    def _backing_id(ref: ArgRef) -> int:
        """Base-storage identity (buffer address for arrays, so all
        per-process views of a COMMON member agree)."""
        if isinstance(ref, CellRef):
            return id(ref.cell)
        if isinstance(ref, (ElementRef, ArrayRef)):
            return ref.farray.storage_id()
        return 0

    def _sub_frclki(self, args, frame) -> Iterator:
        if len(args) != 2:
            raise SimulationError("FRCLKI expects (lockvar, state)")
        lock = self._lock_for(args[0], frame)
        state = args[1].get()
        self.scheduler.set_lock_state(
            lock, bool(state), frame.process.clock if frame.process else 0)
        yield Cost(self.machine.costs.lock_release)

    # ------------------------------------------------------------------
    # two-lock full/empty support (non-HEP)
    # ------------------------------------------------------------------
    def _sub_frcain(self, args, frame) -> Iterator:
        """Register async variable V with its E and F locks; void once."""
        if len(args) != 3:
            raise SimulationError("FRCAIN expects (var, elock, flock)")
        vkey = _storage_key(args[0])
        if vkey not in self._async_pairs:
            self._async_pairs[vkey] = (args[1], args[2])
            # E starts locked (empty); F starts unlocked.
            self._init_locked_storage.add(self._backing_id(args[1]))
        yield Cost(self.machine.costs.shared_access_penalty)

    def _sub_frcvod(self, args, frame) -> Iterator:
        """Force the two-lock state to empty: E locked, F unlocked."""
        if len(args) != 2:
            raise SimulationError("FRCVOD expects (elock, flock)")
        now = frame.process.clock if frame.process else 0
        e_lock = self._lock_for(args[0], frame)
        f_lock = self._lock_for(args[1], frame)
        self.scheduler.set_lock_state(e_lock, True, now)
        self.scheduler.set_lock_state(f_lock, False, now)
        yield Cost(self.machine.costs.lock_release * 2)

    def _fn_isfull(self, args) -> bool:
        if len(args) != 1:
            raise SimulationError("FRCISF expects one async variable")
        ref = args[0]
        if self.machine.lock_type is LockType.HARDWARE_FE:
            if isinstance(ref, ElementRef):
                return ref.farray.fe_state(ref.subscripts)
            if isinstance(ref, CellRef):
                return ref.cell.full
            raise SimulationError("Isfull needs an async variable")
        pair = self._async_pair_for(ref)
        e_ref, f_ref = pair
        e_lock = self._lock_for(self._elementwise(e_ref, ref))
        f_lock = self._lock_for(self._elementwise(f_ref, ref))
        return f_lock.locked and not e_lock.locked

    def _async_pair_for(self, ref: ArgRef):
        # Element references belong to the whole-array registration.
        if isinstance(ref, ElementRef):
            key = ("array", ref.farray.storage_id())
        else:
            key = _storage_key(ref)
        pair = self._async_pairs.get(key)
        if pair is None:
            raise SimulationError(
                "Isfull on a variable not declared Async")
        return pair

    @staticmethod
    def _elementwise(lock_base: ArgRef, var_ref: ArgRef) -> ArgRef:
        """Map an async array's element to its E/F lock element."""
        if isinstance(var_ref, ElementRef) and \
                isinstance(lock_base, ArrayRef):
            return ElementRef(lock_base.farray, var_ref.subscripts)
        return lock_base

    # ------------------------------------------------------------------
    # HEP hardware full/empty operations
    # ------------------------------------------------------------------
    def _require_hep(self, what: str) -> None:
        if self.machine.lock_type is not LockType.HARDWARE_FE:
            raise SimulationError(
                f"{what} requires hardware full/empty state "
                f"({self.machine.name} has none) — wrong machine?")

    @staticmethod
    def _fe_get(ref: ArgRef) -> bool:
        if isinstance(ref, ElementRef):
            return ref.farray.fe_state(ref.subscripts)
        if isinstance(ref, CellRef):
            return ref.cell.full
        raise SimulationError("full/empty operation on non-variable")

    @staticmethod
    def _fe_set(ref: ArgRef, full: bool) -> None:
        if isinstance(ref, ElementRef):
            ref.farray.set_fe(ref.subscripts, full)
        else:
            ref.cell.full = full

    def _fe_key(self, ref: ArgRef, which: str):
        position = (ref.farray.flat_index(ref.subscripts)
                    if isinstance(ref, ElementRef) else ())
        return ("fe-" + which, self._backing_id(ref), position)

    def _sub_hepprd(self, args, frame) -> Iterator:
        self._require_hep("HEPPRD")
        var, value = args[0], args[1]
        cost = self.machine.costs.lock_acquire
        while self._fe_get(var):
            yield Block(self._fe_key(var, "empty"))
        var.set(value.get())
        self._fe_set(var, True)
        yield Wake(self._fe_key(var, "full"))
        yield Cost(cost)

    def _sub_hepcon(self, args, frame) -> Iterator:
        self._require_hep("HEPCON")
        var, dest = args[0], args[1]
        while not self._fe_get(var):
            yield Block(self._fe_key(var, "full"))
        dest.set(var.get())
        self._fe_set(var, False)
        yield Wake(self._fe_key(var, "empty"))
        yield Cost(self.machine.costs.lock_acquire)

    def _sub_hepcpy(self, args, frame) -> Iterator:
        self._require_hep("HEPCPY")
        var, dest = args[0], args[1]
        while not self._fe_get(var):
            yield Block(self._fe_key(var, "full"))
        dest.set(var.get())
        # State stays full: pass the wakeup along to other readers.
        yield Wake(self._fe_key(var, "full"))
        yield Cost(self.machine.costs.lock_acquire)

    def _sub_hepvod(self, args, frame) -> Iterator:
        self._require_hep("HEPVOD")
        var = args[0]
        self._fe_set(var, False)
        yield Wake(self._fe_key(var, "empty"))
        yield Cost(self.machine.costs.lock_acquire)

    def _sub_hepvin(self, args, frame) -> Iterator:
        self._require_hep("HEPVIN")
        var = args[0]
        key = _storage_key(args[0]) if not isinstance(args[0], ElementRef) \
            else ("array", args[0].farray.storage_id())
        if key not in self._async_inited:
            self._async_inited.add(key)
            if isinstance(var, ArrayRef):
                pass    # arrays start all-empty already
            elif isinstance(var, CellRef):
                var.cell.full = False
        yield Cost(self.machine.costs.lock_acquire)

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def _sub_frkall(self, args, frame) -> Iterator:
        if self.machine.process_model is ProcessModel.SUBROUTINE_SPAWN:
            raise SimulationError(
                f"FRKALL (fork model) called on {self.machine.name}, "
                "which creates processes by subroutine call")
        yield from self._spawn_force(args, frame)

    def _sub_hepspn(self, args, frame) -> Iterator:
        if self.machine.process_model is not ProcessModel.SUBROUTINE_SPAWN:
            raise SimulationError(
                f"HEPSPN called on {self.machine.name}, which uses a "
                "fork process model")
        yield from self._spawn_force(args, frame)

    def _spawn_force(self, args, frame) -> Iterator:
        if len(args) != 1:
            raise SimulationError("process creation expects the main name")
        main_name = str(args[0].get())
        unit = self.program.unit(main_name)
        assert self.interpreter is not None, "runtime not wired"
        parent = frame.process
        for me in range(1, self.nproc + 1):
            yield Cost(self.machine.costs.process_create)
            holder: list[SimProcess] = []
            gen = self._force_process_body(unit, me, holder)
            proc = self.scheduler.spawn(
                gen, name=f"{main_name.lower()}-{me}",
                start_time=parent.clock if parent else 0,
                on_exit=self._child_done)
            holder.append(proc)
            self._children += 1
            if self.machine.process_model is ProcessModel.UNIX_FORK and \
                    parent is not None:
                self.provider.fork_copy(parent.pid, proc.pid)

    def _force_process_body(self, unit, me: int, holder: list) -> Iterator:
        from repro.fortran.interp import ValueRef
        process = holder[0]
        try:
            yield from self.interpreter.run_unit(
                unit, [ValueRef(me), ValueRef(self.nproc)], process=process)
        except StopSignal as stop:
            yield HaltSim(stop.message)

    def _child_done(self, proc: SimProcess) -> None:
        self._children_done += 1
        if self._children_done >= self._children:
            self.scheduler.wake_key(("join", id(self)), proc.clock,
                                    all_waiters=True)

    def _sub_frcjon(self, args, frame) -> Iterator:
        while self._children_done < self._children:
            yield Block(("join", id(self)))
        yield Cost(self.machine.costs.context_switch)

    # ------------------------------------------------------------------
    # startup / sharing registration
    # ------------------------------------------------------------------
    def _sub_frcshb(self, args, frame) -> Iterator:
        if len(args) != 1:
            raise SimulationError("FRCSHB expects a block name")
        self.registry.register(str(args[0].get()))
        yield Cost(self.machine.costs.shared_access_penalty * 10)

    def _sub_frcpag(self, args, frame) -> Iterator:
        self.page_plan_requested = True
        page = self.machine.page_size or 1
        yield Cost(page // 64 + self.machine.costs.syscall_overhead)

    def _sub_zzstrt(self, args, frame) -> Iterator:
        # Generated programs normally define ZZSTRT; this fallback is a
        # no-op so hand-written drivers still run.
        yield Cost(1)

    # ------------------------------------------------------------------
    # the Askfor work queue [LO83]
    # ------------------------------------------------------------------
    def _queue(self, name: str) -> WorkQueue:
        try:
            return self._queues[name.upper()]
        except KeyError as exc:
            raise SimulationError(f"no task queue named {name} "
                                  "(missing Taskq declaration?)") from exc

    def _sub_frcqin(self, args, frame) -> Iterator:
        name = str(args[0].get()).upper()
        capacity = int(args[1].get())
        if name not in self._queues:
            self._queues[name] = WorkQueue(name=name, capacity=capacity)
        yield Cost(self.machine.costs.shared_access_penalty)

    def _sub_frcqpt(self, args, frame) -> Iterator:
        queue = self._queue(str(args[0].get()))
        queue.items.append(args[1].get())
        queue.total_put += 1
        queue.done = False
        yield Wake(("queue", queue.name))
        yield Cost(self.machine.costs.lock_acquire +
                   self.machine.costs.lock_release)

    def _sub_frcqgt(self, args, frame) -> Iterator:
        if len(args) != 3:
            raise SimulationError("FRCQGT expects (queue, work, got)")
        queue = self._queue(str(args[0].get()))
        out_ref, got_ref = args[1], args[2]
        pid = frame.process.pid if frame.process else 0
        queue.holding.discard(pid)
        yield Cost(self.machine.costs.lock_acquire)
        while True:
            if queue.items:
                out_ref.set(queue.items.pop(0))
                queue.total_got += 1
                queue.holding.add(pid)
                got_ref.set(True)
                yield Cost(self.machine.costs.lock_release)
                return
            if queue.done or not queue.holding:
                # Empty and nobody can add more work: all done.
                queue.done = True
                got_ref.set(False)
                yield Wake(("queue", queue.name), all_waiters=True)
                yield Cost(self.machine.costs.lock_release)
                return
            yield Block(("queue", queue.name))
