"""The discrete-event scheduler: simulated processors with clocks.

A conservative event loop: always resume the process with the smallest
clock, so every shared-memory interaction resolves in deterministic
simulated-time order (ties broken by pid).  Lock waits cost what the
machine's lock type says they cost (§4.1.3):

* **spin** — the waiting CPU burns cycles until the release;
* **syscall** — the OS parks the process (syscall overhead at block
  time, context switch at wake);
* **combined** — spin up to the machine's limit, then take the OS path;
* **hardware full/empty** — near-free waiting in the memory pipeline.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from itertools import count
from time import monotonic
from typing import Any, Callable, Hashable, Iterator

from repro._util.errors import SimDeadlockError, SimulationError
from repro.machines.model import LockType, MachineModel
from repro.sim.events import (
    AcquireLock,
    Block,
    Cost,
    Halt,
    HaltSim,
    ReleaseLock,
    Spawn,
    Wake,
)
from repro.sim.lock import SimLock


class ProcState(Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"


class SimProcess:
    """One simulated process (usually one per processor in the Force
    model; with more processes than processors they time-share)."""

    __slots__ = ("pid", "name", "gen", "clock", "state", "block_start",
                 "blocked_on", "on_exit", "busy_cycles", "on_cpu",
                 "ever_scheduled")

    def __init__(self, pid: int, name: str, gen: Iterator) -> None:
        self.pid = pid
        self.name = name or f"p{pid}"
        self.gen = gen
        self.clock = 0
        self.state = ProcState.READY
        self.block_start = 0
        self.blocked_on: Any = None
        self.on_exit: Callable[["SimProcess"], None] | None = None
        self.busy_cycles = 0
        self.on_cpu = False
        self.ever_scheduled = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SimProcess {self.name} t={self.clock} "
                f"{self.state.value}>")


@dataclass
class SimStats:
    """Aggregate results of one simulation run."""

    makespan: int = 0
    total_busy: int = 0
    #: source statements executed (Cost events carry exact counts even
    #: when the codegen tier batches straight-line runs and kernels)
    statements: int = 0
    spin_cycles: int = 0
    context_switches: int = 0
    lock_acquisitions: int = 0
    contended_acquisitions: int = 0
    processes: int = 0
    events: int = 0
    halted: bool = False
    halt_message: str | None = None
    per_process_clock: dict[str, int] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Busy fraction of processor-time across the run."""
        if self.makespan == 0 or self.processes == 0:
            return 0.0
        return self.total_busy / (self.makespan * self.processes)


class Scheduler:
    """Runs simulated processes against one machine model."""

    def __init__(self, machine: MachineModel, *,
                 max_events: int = 20_000_000,
                 trace: bool = False,
                 processors: int | None = None,
                 deadline: float | None = None) -> None:
        """``processors`` bounds how many processes advance
        concurrently (run-to-block multiplexing, no preemption).
        ``None`` means unlimited — one ideal CPU per process, the
        measurement mode for algorithm-property experiments.

        With a finite capacity, spin-lock waiters *keep their
        processor* while waiting (that is what spinning is), syscall
        and passive waiters release it, and a combined lock releases
        after its spin budget.  Over-subscribing a spin-lock machine
        can therefore genuinely deadlock — the hazard that made
        one-process-per-processor the Force's operating point.

        ``deadline`` bounds the run in *wall-clock seconds*: a
        simulation still churning past it raises
        :class:`SimDeadlockError` (livelock/runaway guard for
        ``force run --deadline``).
        """
        self.machine = machine
        self.max_events = max_events
        self.deadline = deadline
        self.trace_enabled = trace
        self.trace: list[tuple[int, str, str]] = []
        self.stats = SimStats()
        self._heap: list[tuple[int, int, SimProcess]] = []
        self._seq = count()
        self._pids = count(1)
        self._procs: list[SimProcess] = []
        self._wait_queues: dict[Hashable, deque[SimProcess]] = {}
        self._halted = False
        self._lock_count = 0
        self.processors = processors
        self._cpu_free: list[int] = [0] * processors if processors \
            else []
        #: READY processes parked because every processor is granted
        self._cpu_waiters: deque[SimProcess] = deque()

    # ------------------------------------------------------------------
    # process and lock management
    # ------------------------------------------------------------------
    def spawn(self, gen: Iterator, name: str = "",
              start_time: int = 0,
              on_exit: Callable[[SimProcess], None] | None = None
              ) -> SimProcess:
        proc = SimProcess(next(self._pids), name, gen)
        proc.clock = start_time
        proc.on_exit = on_exit
        self._procs.append(proc)
        self._push(proc)
        self.stats.processes += 1
        self._trace(proc, "spawned")
        return proc

    def new_lock(self, name: str = "") -> SimLock:
        """Create a lock, enforcing scarcity where the machine has it."""
        limit = self.machine.lock_limit
        if limit and self._lock_count >= limit:
            raise SimulationError(
                f"{self.machine.name}: lock limit of {limit} exhausted "
                "(locks are a scarce resource on this machine)")
        self._lock_count += 1
        return SimLock(name=name)

    def set_lock_state(self, lock: SimLock, locked: bool,
                       at_time: int) -> None:
        """Force a lock's state (Void / init-to-empty semantics).

        Unlocking with waiters present hands the lock to the first
        waiter, as a normal release would.
        """
        if locked:
            lock.locked = True
            return
        if lock.waiters:
            waiter = lock.waiters.popleft()
            grant_time = max(at_time, waiter.block_start)
            self._charge_wait(waiter, grant_time)
            waiter.state = ProcState.READY
            waiter.blocked_on = None
            self._push(waiter)
        else:
            lock.locked = False

    def wake_key(self, key: Hashable, at_time: int,
                 all_waiters: bool = False) -> None:
        """Wake waiters on ``key`` (used by process exit callbacks)."""
        queue = self._wait_queues.get(key)
        if not queue:
            return
        to_wake = list(queue) if all_waiters else [queue[0]]
        for proc in to_wake:
            queue.remove(proc)
            self._unblock(proc, at_time)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimStats:
        events = 0
        wall_limit = None if self.deadline is None \
            else monotonic() + self.deadline
        while self._heap and not self._halted:
            if wall_limit is not None and events % 4096 == 0 \
                    and monotonic() > wall_limit:
                raise SimDeadlockError(
                    f"simulation exceeded its {self.deadline}s "
                    f"wall-clock deadline after {events} events "
                    "(livelock or runaway program?)")
            clock, _seq, proc = heapq.heappop(self._heap)
            if proc.state is not ProcState.READY or proc.clock != clock:
                continue   # stale heap entry
            if self.processors and not proc.on_cpu:
                if not self._cpu_free:
                    # Every processor granted: park until one frees.
                    self._cpu_waiters.append(proc)
                    continue
                available = heapq.heappop(self._cpu_free)
                proc.on_cpu = True
                proc.ever_scheduled = True
                if available > proc.clock:
                    # The processor frees later: wait, then re-sort.
                    proc.clock = available
                    self._push(proc)
                    continue
            events += 1
            if events > self.max_events:
                raise SimulationError(
                    f"simulation exceeded {self.max_events} events "
                    "(livelock or runaway program?)")
            try:
                event = next(proc.gen)
            except StopIteration:
                self._finish(proc)
                continue
            self._dispatch(proc, event)
        self.stats.events = events
        if not self._halted:
            blocked = [p for p in self._procs
                       if p.state is ProcState.BLOCKED]
            if blocked or self._cpu_waiters:
                detail = ", ".join(
                    f"{p.name} on {self._describe_blocker(p)}"
                    for p in blocked[:8])
                starved = len(self._cpu_waiters)
                extra = (f"; {starved} runnable but starved of a "
                         "processor (spin waiters hold every CPU?)"
                         if starved else "")
                raise SimDeadlockError(
                    f"deadlock: {len(blocked)} processes blocked "
                    f"({detail}){extra}")
        self._finalize_stats()
        return self.stats

    # ------------------------------------------------------------------
    # event dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, proc: SimProcess, event) -> None:
        if type(event) is Cost:
            proc.clock += event.cycles
            proc.busy_cycles += event.cycles
            self.stats.statements += event.statements
            self._push(proc)
        elif type(event) is AcquireLock:
            self._acquire(proc, event.lock)
        elif type(event) is ReleaseLock:
            self._release(proc, event.lock)
        elif type(event) is Block:
            self._trace(proc, f"block {event.key}")
            proc.state = ProcState.BLOCKED
            proc.block_start = proc.clock
            proc.blocked_on = event.key
            self._wait_queues.setdefault(event.key, deque()).append(proc)
            self._release_cpu(proc, proc.clock)   # passive wait
        elif type(event) is Wake:
            self.wake_key(event.key, proc.clock, event.all_waiters)
            self._push(proc)
        elif type(event) is Spawn:
            child = self.spawn(event.generator, event.name,
                               start_time=proc.clock,
                               on_exit=event.on_exit)
            self._trace(proc, f"spawn {child.name}")
            self._push(proc)
        elif type(event) is HaltSim or type(event) is Halt:
            self._trace(proc, "halt")
            self.stats.halted = True
            self.stats.halt_message = getattr(event, "message", None)
            self._halted = True
            self._finish(proc)
        else:
            raise SimulationError(f"unknown event {event!r} from "
                                  f"{proc.name}")

    # ------------------------------------------------------------------
    # locks
    # ------------------------------------------------------------------
    def _acquire(self, proc: SimProcess, lock: SimLock) -> None:
        costs = self.machine.costs
        proc.clock += costs.lock_acquire
        proc.busy_cycles += costs.lock_acquire
        lock.acquisitions += 1
        self.stats.lock_acquisitions += 1
        if not lock.locked:
            lock.locked = True
            self._trace(proc, f"acquired {lock.name}")
            self._push(proc)
            return
        lock.contended += 1
        self.stats.contended_acquisitions += 1
        if self.machine.lock_type is LockType.SYSCALL:
            # Entering the OS to park costs immediately.
            proc.clock += costs.syscall_overhead
            proc.busy_cycles += costs.syscall_overhead
        proc.state = ProcState.BLOCKED
        proc.block_start = proc.clock
        proc.blocked_on = lock
        lock.waiters.append(proc)
        self._trace(proc, f"waiting on {lock.name}")
        # Processor occupancy while waiting depends on the mechanism:
        # spinners keep their CPU (that is what spinning is); syscall
        # and hardware full/empty waiters release it; a combined lock
        # frees the CPU once its spin budget runs out.
        lock_type = self.machine.lock_type
        if lock_type is LockType.SPIN:
            pass
        elif lock_type is LockType.COMBINED:
            self._release_cpu(proc,
                              proc.clock + self.machine.combined_spin_limit)
        else:
            self._release_cpu(proc, proc.clock)

    def _release(self, proc: SimProcess, lock: SimLock) -> None:
        costs = self.machine.costs
        proc.clock += costs.lock_release
        proc.busy_cycles += costs.lock_release
        if lock.waiters:
            waiter = lock.waiters.popleft()
            grant_time = max(proc.clock, waiter.block_start)
            self._charge_wait(waiter, grant_time)
            # Direct handoff: the lock stays locked for the waiter.
            waiter.state = ProcState.READY
            waiter.blocked_on = None
            self._trace(waiter, f"granted {lock.name}")
            self._push(waiter)
        else:
            lock.locked = False
        self._trace(proc, f"released {lock.name}")
        self._push(proc)

    def _charge_wait(self, waiter: SimProcess, grant_time: int) -> None:
        """Apply the machine's lock-type cost model to a woken waiter."""
        costs = self.machine.costs
        wait = grant_time - waiter.block_start
        lock_type = self.machine.lock_type
        if lock_type is LockType.SPIN:
            # The CPU burned the whole wait polling test&set.
            self.stats.spin_cycles += wait
            waiter.busy_cycles += wait
            waiter.clock = grant_time + costs.spin_retry
        elif lock_type is LockType.SYSCALL:
            self.stats.context_switches += 1
            waiter.clock = grant_time + costs.context_switch
            waiter.busy_cycles += costs.context_switch
        elif lock_type is LockType.COMBINED:
            limit = self.machine.combined_spin_limit
            if wait <= limit:
                self.stats.spin_cycles += wait
                waiter.busy_cycles += wait
                waiter.clock = grant_time + costs.spin_retry
            else:
                self.stats.spin_cycles += limit
                waiter.busy_cycles += limit
                self.stats.context_switches += 1
                waiter.clock = grant_time + costs.context_switch
                waiter.busy_cycles += costs.context_switch
        else:   # HARDWARE_FE: the memory pipeline delivers the grant
            waiter.clock = grant_time + costs.lock_acquire
            waiter.busy_cycles += costs.lock_acquire

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _unblock(self, proc: SimProcess, at_time: int) -> None:
        proc.state = ProcState.READY
        proc.blocked_on = None
        penalty = self.machine.costs.shared_access_penalty
        proc.clock = max(proc.clock, at_time) + penalty
        self._trace(proc, "woken")
        self._push(proc)

    def _release_cpu(self, proc: SimProcess, at_time: int) -> None:
        """Free the process's processor (no-op in unlimited mode)."""
        if not self.processors or not proc.on_cpu:
            return
        proc.on_cpu = False
        heapq.heappush(self._cpu_free, at_time)
        if self._cpu_waiters:
            waiter = self._cpu_waiters.popleft()
            self._push(waiter)        # re-attempts the grant on pop

    def _finish(self, proc: SimProcess) -> None:
        proc.state = ProcState.DONE
        self._trace(proc, "done")
        self._release_cpu(proc, proc.clock)
        if proc.on_exit is not None:
            proc.on_exit(proc)

    def _push(self, proc: SimProcess) -> None:
        if proc.state is ProcState.READY:
            heapq.heappush(self._heap, (proc.clock, next(self._seq), proc))

    def _trace(self, proc: SimProcess, what: str) -> None:
        if self.trace_enabled and len(self.trace) < 100_000:
            self.trace.append((proc.clock, proc.name, what))

    def _describe_blocker(self, proc: SimProcess) -> str:
        blocker = proc.blocked_on
        if isinstance(blocker, SimLock):
            return f"lock {blocker.name}"
        return f"key {blocker!r}"

    def _finalize_stats(self) -> None:
        stats = self.stats
        stats.makespan = max((p.clock for p in self._procs), default=0)
        stats.total_busy = sum(p.busy_cycles for p in self._procs)
        stats.per_process_clock = {p.name: p.clock for p in self._procs}
