"""Events a simulated process may yield to the scheduler.

The Fortran interpreter yields :class:`Cost` (re-exported from
``repro.fortran.interp`` so both layers agree on the type); the Force
runtime library yields the synchronization events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

# The Cost event is defined by the interpreter layer; the scheduler
# accepts it from any source (hand-written process generators included).
from repro.fortran.interp import Cost, Halt

__all__ = ["Cost", "Halt", "AcquireLock", "ReleaseLock", "Block", "Wake",
           "Spawn", "HaltSim"]


@dataclass(frozen=True, slots=True)
class AcquireLock:
    """Acquire (set) a binary semaphore; waits while it is locked."""
    lock: Any                    # a SimLock


@dataclass(frozen=True, slots=True)
class ReleaseLock:
    """Release (clear) a binary semaphore; wakes one waiter FIFO."""
    lock: Any


@dataclass(frozen=True, slots=True)
class Block:
    """Park this process on the wait queue named ``key``.

    The process resumes after some other process yields ``Wake`` on the
    same key.  Used for HEP full/empty cells, join points and the
    askfor work queue.
    """
    key: Hashable


@dataclass(frozen=True, slots=True)
class Wake:
    """Wake waiters parked on ``key`` (one by default, or all)."""
    key: Hashable
    all_waiters: bool = False


@dataclass(frozen=True, slots=True)
class Spawn:
    """Create a new simulated process running ``generator``.

    The child's clock starts at the parent's current time; the parent
    is charged the machine's process-creation cost separately by the
    runtime library (so the serial fork loop shows up in the timeline).
    """
    generator: Any
    name: str = ""
    on_exit: Callable[["Any"], None] | None = None


@dataclass(frozen=True, slots=True)
class HaltSim:
    """Terminate the entire simulation (Fortran STOP)."""
    message: str | None = None
