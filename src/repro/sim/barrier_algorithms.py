"""Barrier algorithms on the simulator, for the [AJ87] comparison (E3).

Four algorithms as simulated-process generators, so barrier cost can be
measured in machine cycles against any :class:`MachineModel`:

* ``central-counter`` — the Force's own two-lock counter barrier
  (exactly the macro expansion's protocol);
* ``sense-reversing`` — one counter lock + a broadcast wakeup;
* ``dissemination`` — ⌈log₂P⌉ rounds of staged signalling;
* ``tournament`` — pairwise matches up a binary tree, champion
  broadcasts the release.

``measure_barrier_cost`` runs E episodes with P processes and returns
the average cycles one barrier episode adds to the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.errors import SimulationError
from repro.machines.model import MachineModel
from repro.sim.events import AcquireLock, Block, Cost, ReleaseLock, Wake
from repro.sim.scheduler import Scheduler


@dataclass
class _CentralState:
    barwin: object
    barwot: object
    count: int = 0


def _central_counter(state: _CentralState, me: int, nproc: int):
    """One episode of the Force's two-lock counter barrier."""
    yield AcquireLock(state.barwin)
    state.count += 1
    if state.count < nproc:
        yield ReleaseLock(state.barwin)
        yield AcquireLock(state.barwot)
        state.count -= 1
        if state.count == 0:
            yield ReleaseLock(state.barwin)
        else:
            yield ReleaseLock(state.barwot)
    else:
        state.count -= 1
        if state.count == 0:
            yield ReleaseLock(state.barwin)
        else:
            yield ReleaseLock(state.barwot)


@dataclass
class _SenseState:
    lock: object
    count: int = 0
    sense: int = 0


def _sense_reversing(state: _SenseState, me: int, nproc: int):
    yield AcquireLock(state.lock)
    my_sense = state.sense
    state.count += 1
    if state.count == nproc:
        state.count = 0
        state.sense ^= 1
        yield ReleaseLock(state.lock)
        yield Wake(("sense", id(state), my_sense), all_waiters=True)
    else:
        yield ReleaseLock(state.lock)
        while state.sense == my_sense:
            yield Block(("sense", id(state), my_sense))


@dataclass
class _FlagState:
    """Signal counters for the log-depth algorithms.

    A flag is a counter so a signal arriving before the wait is not
    lost (the simulator analogue of the events used in the native
    runtime).
    """

    flags: dict = field(default_factory=dict)

    def signal(self, key, when_cost):
        self.flags[key] = self.flags.get(key, 0) + 1
        yield Cost(when_cost)
        yield Wake(("flag", id(self), key), all_waiters=True)

    def await_flag(self, key):
        while self.flags.get(key, 0) == 0:
            yield Block(("flag", id(self), key))
        self.flags[key] -= 1


def _rounds_for(nproc: int) -> int:
    rounds, span = 0, 1
    while span < nproc:
        span *= 2
        rounds += 1
    return rounds


def _dissemination(state: _FlagState, me: int, nproc: int, episode: int,
                   signal_cost: int):
    index = me - 1
    distance = 1
    for rnd in range(_rounds_for(nproc)):
        partner = (index + distance) % nproc
        yield from state.signal((episode, rnd, partner), signal_cost)
        yield from state.await_flag((episode, rnd, index))
        distance *= 2


def _tournament(state: _FlagState, me: int, nproc: int, episode: int,
                signal_cost: int):
    index = me - 1
    wins = []
    rounds = _rounds_for(nproc)
    is_loser = False
    for rnd in range(rounds):
        step = 1 << rnd
        if index % (2 * step) == 0:
            partner = index + step
            if partner < nproc:
                yield from state.await_flag((episode, "a", rnd, index))
            wins.append(rnd)
        else:
            partner = index - step
            yield from state.signal((episode, "a", rnd, partner),
                                    signal_cost)
            yield from state.await_flag((episode, "r", rnd, index))
            is_loser = True
            break
    for done in reversed(wins):
        down = index + (1 << done)
        if down < nproc:
            yield from state.signal((episode, "r", done, down), signal_cost)
    if is_loser:
        return


def measure_barrier_cost(algorithm: str, machine: MachineModel,
                         nproc: int, episodes: int = 10,
                         work_between: int = 50) -> float:
    """Average added makespan per barrier episode, in cycles."""
    scheduler = Scheduler(machine)
    signal_cost = machine.costs.shared_access_penalty + 1

    if algorithm == "central-counter":
        state = _CentralState(barwin=scheduler.new_lock("BARWIN"),
                              barwot=scheduler.new_lock("BARWOT"))
        state.barwot.locked = True

        def body(me):
            for _e in range(episodes):
                yield Cost(work_between)
                yield from _central_counter(state, me, nproc)
    elif algorithm == "sense-reversing":
        state = _SenseState(lock=scheduler.new_lock("CNT"))

        def body(me):
            for _e in range(episodes):
                yield Cost(work_between)
                yield from _sense_reversing(state, me, nproc)
    elif algorithm == "dissemination":
        state = _FlagState()

        def body(me):
            for episode in range(episodes):
                yield Cost(work_between)
                yield from _dissemination(state, me, nproc, episode,
                                          signal_cost)
    elif algorithm == "tournament":
        state = _FlagState()

        def body(me):
            for episode in range(episodes):
                yield Cost(work_between)
                yield from _tournament(state, me, nproc, episode,
                                       signal_cost)
    else:
        raise SimulationError(f"unknown barrier algorithm {algorithm}")

    for me in range(1, nproc + 1):
        scheduler.spawn(body(me), name=f"p{me}")
    stats = scheduler.run()
    return (stats.makespan - episodes * work_between) / episodes


SIM_BARRIER_ALGORITHMS = ("central-counter", "sense-reversing",
                          "dissemination", "tournament")
