"""Render scheduler traces as text timelines.

A compact observability tool for simulated runs: per-process lanes of
simulated time with lock acquire/release, blocking and wake events, so
barrier episodes, convoys and serialization are visible at a glance.

::

    t=    1234 | summer-2     | waiting on BARWIN
    t=    1260 | summer-1     | released BARWIN
    ...

plus a utilization summary per process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.scheduler import SimStats


@dataclass(frozen=True)
class TimelineOptions:
    """Rendering options for :func:`render_timeline`."""

    max_events: int = 200
    #: only show events whose text contains one of these (None = all)
    only: tuple[str, ...] | None = None
    width: int = 78


def render_timeline(trace: list[tuple[int, str, str]],
                    options: TimelineOptions | None = None) -> str:
    """Format a collected trace (run with ``trace=True``)."""
    options = options or TimelineOptions()
    if not trace:
        return "(no trace events: was the run started with trace=True?)"
    events = trace
    if options.only:
        events = [e for e in events
                  if any(tag in e[2] for tag in options.only)]
    shown = events[:options.max_events]
    lines = []
    for when, who, what in shown:
        lines.append(f"t={when:>10d} | {who:<14s} | {what}")
    if len(events) > len(shown):
        lines.append(f"... {len(events) - len(shown)} more events")
    return "\n".join(lines)


def render_utilization(stats: SimStats, *, width: int = 40) -> str:
    """Bar chart of per-process busy fraction of the makespan."""
    if stats.makespan == 0:
        return "(empty run)"
    lines = [f"makespan {stats.makespan} cycles, "
             f"utilization {stats.utilization:.1%}"]
    for name, clock in sorted(stats.per_process_clock.items()):
        fraction = min(clock / stats.makespan, 1.0)
        bar = "#" * round(fraction * width)
        lines.append(f"{name:<14s} |{bar:<{width}s}| "
                     f"{clock} cyc ({fraction:.0%} of makespan)")
    return "\n".join(lines)


def lock_contention_report(trace: list[tuple[int, str, str]],
                           top: int = 10) -> str:
    """The most contended locks of a run, from its trace events."""
    locks = {}
    for _when, _who, what in trace:
        for verb in ("acquired ", "waiting on ", "granted ", "released "):
            if what.startswith(verb):
                name = what[len(verb):]
                entry = locks.setdefault(name, [0, 0])
                entry[0] += 1
                if verb == "waiting on ":
                    entry[1] += 1
    rows = sorted(locks.items(), key=lambda kv: -kv[1][1])[:top]
    if not rows:
        return "(no lock events in trace)"
    lines = [f"{'lock':<22s}{'events':>8s}{'waits':>8s}"]
    for name, (total, waits) in rows:
        lines.append(f"{name:<22s}{total:>8d}{waits:>8d}")
    return "\n".join(lines)
