"""Render scheduler traces as text timelines.

A compact observability tool for simulated runs: per-process lanes of
simulated time with lock acquire/release, blocking and wake events, so
barrier episodes, convoys and serialization are visible at a glance.

::

    t=    1234 | summer-2     | waiting on BARWIN
    t=    1260 | summer-1     | released BARWIN
    ...

plus a utilization summary per process.

The text rendering goes through the unified trace model
(:mod:`repro.trace`): raw scheduler triples are adapted to
:class:`~repro.trace.events.TraceEvent` and formatted by the shared
:func:`repro.trace.export.to_text`, so the simulator timeline and the
native runtime's traces print identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.scheduler import SimStats
from repro.trace.adapter import events_from_sim_trace
from repro.trace.export import to_text


@dataclass(frozen=True)
class TimelineOptions:
    """Rendering options for :func:`render_timeline`."""

    max_events: int = 200
    #: only show events whose text contains one of these (None = all)
    only: tuple[str, ...] | None = None
    width: int = 78


def render_timeline(trace: list[tuple[int, str, str]],
                    options: TimelineOptions | None = None) -> str:
    """Format a collected trace (run with ``trace=True``).

    Accepts raw scheduler triples and renders them through the unified
    trace model, so filtering and truncation behave the same for
    simulated and native event streams.
    """
    options = options or TimelineOptions()
    return to_text(events_from_sim_trace(trace),
                   max_events=options.max_events,
                   only=options.only)


def render_utilization(stats: SimStats, *, width: int = 40) -> str:
    """Bar chart of per-process busy fraction of the makespan."""
    if stats.makespan == 0:
        return "(empty run)"
    lines = [f"makespan {stats.makespan} cycles, "
             f"utilization {stats.utilization:.1%}"]
    for name, clock in sorted(stats.per_process_clock.items()):
        fraction = min(clock / stats.makespan, 1.0)
        bar = "#" * round(fraction * width)
        lines.append(f"{name:<14s} |{bar:<{width}s}| "
                     f"{clock} cyc ({fraction:.0%} of makespan)")
    return "\n".join(lines)


def lock_contention_report(trace: list[tuple[int, str, str]],
                           top: int = 10) -> str:
    """The most contended locks of a run, from its trace events."""
    locks = {}
    for _when, _who, what in trace:
        for verb in ("acquired ", "waiting on ", "granted ", "released "):
            if what.startswith(verb):
                name = what[len(verb):]
                entry = locks.setdefault(name, [0, 0])
                entry[0] += 1
                if verb == "waiting on ":
                    entry[1] += 1
    rows = sorted(locks.items(), key=lambda kv: -kv[1][1])[:top]
    if not rows:
        return "(no lock events in trace)"
    lines = [f"{'lock':<22s}{'events':>8s}{'waits':>8s}"]
    for name, (total, waits) in rows:
        lines.append(f"{name:<22s}{total:>8d}{waits:>8d}")
    return "\n".join(lines)
