"""Discrete-event simulation of a shared-memory multiprocessor.

Python's GIL prevents real shared-memory speedup, so performance-shaped
experiments run on this simulator instead: each Force process is a
generator (produced by the Fortran interpreter or written directly)
executing on its own simulated processor with its own clock.  Locks,
process creation and context switches cost cycles according to the
:class:`~repro.machines.MachineModel`, so contention, barrier scaling
and scheduling effects take the machine-specific shapes the paper
describes — deterministically.

Lock semantics are *binary semaphores*, as the paper requires: any
process may unlock a lock, which is how the Force barrier and the
two-lock full/empty protocol (§4.2) work.
"""

from repro.sim.events import (
    AcquireLock,
    Block,
    Cost,
    HaltSim,
    ReleaseLock,
    Spawn,
    Wake,
)
from repro.sim.lock import SimLock
from repro.sim.scheduler import Scheduler, SimProcess, SimStats
from repro._util.errors import SimulationError

__all__ = [
    "AcquireLock",
    "Block",
    "Cost",
    "HaltSim",
    "ReleaseLock",
    "Spawn",
    "Wake",
    "SimLock",
    "Scheduler",
    "SimProcess",
    "SimStats",
    "SimulationError",
]
