"""Binary-semaphore locks for the simulator.

The paper's generic lock macros (§4.1) are set/clear operations on a
shared variable: *any* process may unlock, which both the barrier
algorithm and the Produce/Consume two-lock protocol depend on.  A
:class:`SimLock` therefore has no owner, only a locked flag and a FIFO
waiter queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import count

_lock_ids = count(1)


@dataclass
class SimLock:
    """One lock variable as seen by the scheduler."""

    name: str = ""
    locked: bool = False
    waiters: deque = field(default_factory=deque)
    #: Statistics: how many acquisitions ever, and contended ones.
    acquisitions: int = 0
    contended: int = 0

    def __post_init__(self) -> None:
        self.lock_id = next(_lock_ids)
        if not self.name:
            self.name = f"lock{self.lock_id}"

    def __hash__(self) -> int:
        return self.lock_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "locked" if self.locked else "unlocked"
        return f"<SimLock {self.name} {state} {len(self.waiters)} waiting>"
