r"""The Force syntax translation rules (the "sed script").

Rewrites each Force statement into a parameterized macro call that the
m4 stage expands.  Statement forms follow §3 of the paper and the Force
User's Manual [JBAR87]; where the paper is silent on concrete syntax
(Askfor queues, doubly-nested DOALLs) this module documents the dialect
we implement.

Accepted statements (keywords case-insensitive, one per line; ``lbl``
is a numeric statement label):

====================================  =====================================
Force statement                       emitted macro call
====================================  =====================================
``Force NAME of NP ident ME``         ``force_main(NAME, NP, ME)``
``Forcesub NAME(A, B) of NP ident ME``  ``force_sub(NAME, `A, B', NP, ME)``
``Externf NAME``                      ``externf(NAME)``
``Forcecall NAME(A, B)``              ``forcecall(NAME, `A, B')``
``End declarations``                  ``end_declarations``
``Join``                              ``join_force``
``Barrier`` / ``End barrier``         ``barrier_begin`` / ``barrier_end``
``Critical VAR`` / ``End critical``   ``critical(VAR)`` / ``end_critical``
``Presched DO lbl V = l, u[, s]``     ``presched_do(lbl, V, `l, u[, s]')``
``lbl End presched DO``               ``end_presched_do(lbl)``
``Selfsched DO lbl V = l, u[, s]``    ``selfsched_do(lbl, V, `l, u[, s]')``
``lbl End selfsched DO``              ``end_selfsched_do(lbl)``
``Presched DO2 lbl V1 = b1; V2 = b2`` ``presched_do2(lbl, V1, `b1', V2, `b2')``
``lbl End presched DO2``              ``end_presched_do2(lbl)``
``Selfsched DO2 lbl V1 = b1; V2 = b2``  ``selfsched_do2(…)`` likewise
``Pcase [on VAR]``                    ``pcase(VAR-or-empty)``
``Usect``                             ``usect``
``Csect (COND)``                      ``csect(`COND')``
``End pcase``                         ``end_pcase``
``Produce VAR = EXPR``                ``produce(`VAR', `EXPR')``
``Consume VAR into DEST``             ``consume(`VAR', `DEST')``
``Copy VAR into DEST``                ``copyasync(`VAR', `DEST')``
``Void VAR``                          ``voidasync(`VAR')``
``Isfull(VAR)``  (in expressions)     ``FRCISF(VAR)`` runtime call
``Shared TYPE LIST``                  ``shared_decl(TYPE, `LIST')``
``Private TYPE LIST``                 ``private_decl(TYPE, `LIST')``
``Async TYPE LIST``                   ``async_decl(TYPE, `LIST')``
``Shared common /BLK/ LIST``          ``shared_common_decl(BLK, `LIST')``
``Private common /BLK/ LIST``         ``private_common_decl(BLK, `LIST')``
``Async common /BLK/ LIST``           ``async_common_decl(BLK, `LIST')``
``Taskq NAME(SIZE)``                  ``taskq_decl(NAME, SIZE)``
``Askfor lbl VAR from QUEUE``         ``askfor(lbl, VAR, QUEUE)``
``Putwork QUEUE = EXPR``              ``putwork(QUEUE, `EXPR')``
``lbl End askfor``                    ``end_askfor(lbl)``
====================================  =====================================

Fortran comment lines (``C``/``*``/``!`` in column one) and every
non-Force line pass through unchanged.  As in fixed-form Fortran,
statements must not start in column one — a ``Critical`` or ``Consume``
statement written flush-left would be read as a ``C`` comment line.
"""

from __future__ import annotations

import threading

from repro.sedstage.engine import SedProgram

_TYPES = (r"(?:DOUBLE\s+PRECISION|INTEGER|REAL|LOGICAL|COMPLEX|"
          r"CHARACTER(?:\*\d+)?)")

# The translation script, in our sed dialect (Python regexes, one rule
# per line).  Order matters: more specific statements come first.
FORCE_SED_SCRIPT = r"""
# --- program structure -------------------------------------------------
s/^\s*Force\s+(\w+)\s+of\s+(\w+)\s+ident\s+(\w+)\s*$/force_main(`\1',`\2',`\3')/I
s/^\s*Forcesub\s+(\w+)\s*\(([^)]*)\)\s+of\s+(\w+)\s+ident\s+(\w+)\s*$/force_sub(`\1',`\2',`\3',`\4')/I
s/^\s*Forcesub\s+(\w+)\s+of\s+(\w+)\s+ident\s+(\w+)\s*$/force_sub(`\1',`',`\2',`\3')/I
s/^\s*Externf\s+(\w+)\s*$/externf(`\1')/I
s/^\s*Forcecall\s+(\w+)\s*\(([^)]*)\)\s*$/forcecall(`\1',`\2')/I
s/^\s*Forcecall\s+(\w+)\s*$/forcecall(`\1',`')/I
s/^\s*End\s+declarations\s*$/end_declarations()/I
s/^\s*Join\s*$/join_force()/I
# --- declarations ------------------------------------------------------
s/^\s*Shared\s+common\s*\/(\w+)\/\s*(.*)$/shared_common_decl(`\1',`\2')/I
s/^\s*Private\s+common\s*\/(\w+)\/\s*(.*)$/private_common_decl(`\1',`\2')/I
s/^\s*Async\s+common\s*\/(\w+)\/\s*(.*)$/async_common_decl(`\1',`\2')/I
s/^\s*Shared\s+(@TYPES@)\s+(.*)$/shared_decl(`\1',`\2')/I
s/^\s*Private\s+(@TYPES@)\s+(.*)$/private_decl(`\1',`\2')/I
s/^\s*Async\s+(@TYPES@)\s+(.*)$/async_decl(`\1',`\2')/I
s/^\s*Taskq\s+(\w+)\s*\(\s*(\w+)\s*\)\s*$/taskq_decl(`\1',`\2')/I
# --- synchronization ---------------------------------------------------
s/^\s*Barrier\s*$/barrier_begin()/I
s/^\s*End\s+barrier\s*$/barrier_end()/I
s/^\s*Critical\s+(\w+)\s*$/critical(`\1')/I
s/^\s*End\s+critical\s*$/end_critical()/I
s/^\s*Produce\s+([A-Za-z]\w*(?:\s*\([^=]*\))?)\s*=\s*(.*)$/produce(`\1',`\2')/I
s/^\s*Consume\s+([A-Za-z]\w*(?:\s*\([^=]*\))?)\s+into\s+(\S.*)$/consume(`\1',`\2')/I
s/^\s*Copy\s+([A-Za-z]\w*(?:\s*\([^=]*\))?)\s+into\s+(\S.*)$/copyasync(`\1',`\2')/I
s/^\s*Void\s+(\S.*)$/voidasync(`\1')/I
s/\bIsfull\s*\(/FRCISF(/gI
# --- work distribution -------------------------------------------------
s/^\s*Presched\s+DO2\s+(\d+)\s+(\w+)\s*=\s*([^;]+?)\s*;\s*(\w+)\s*=\s*(.+?)\s*$/presched_do2(`\1',`\2',`\3',`\4',`\5')/I
s/^\s*(\d+)\s+End\s+presched\s+DO2\s*$/end_presched_do2(`\1')/I
s/^\s*Selfsched\s+DO2\s+(\d+)\s+(\w+)\s*=\s*([^;]+?)\s*;\s*(\w+)\s*=\s*(.+?)\s*$/selfsched_do2(`\1',`\2',`\3',`\4',`\5')/I
s/^\s*(\d+)\s+End\s+selfsched\s+DO2\s*$/end_selfsched_do2(`\1')/I
s/^\s*Presched\s+DO\s+(\d+)\s+(\w+)\s*=\s*(.+?)\s*$/presched_do(`\1',`\2',`\3')/I
s/^\s*(\d+)\s+End\s+presched\s+DO\s*$/end_presched_do(`\1')/I
s/^\s*End\s+presched\s+DO\s*$/end_presched_do(`')/I
s/^\s*Blocksched\s+DO\s+(\d+)\s+(\w+)\s*=\s*(.+?)\s*$/blocksched_do(`\1',`\2',`\3')/I
s/^\s*(\d+)\s+End\s+blocksched\s+DO\s*$/end_blocksched_do(`\1')/I
s/^\s*End\s+blocksched\s+DO\s*$/end_blocksched_do(`')/I
s/^\s*Selfsched\s+DO\s+(\d+)\s+(\w+)\s*=\s*(.+?)\s*$/selfsched_do(`\1',`\2',`\3')/I
s/^\s*(\d+)\s+End\s+selfsched\s+DO\s*$/end_selfsched_do(`\1')/I
s/^\s*End\s+selfsched\s+DO\s*$/end_selfsched_do(`')/I
s/^\s*Pcase\s+on\s+(\w+)\s*$/pcase(`\1')/I
s/^\s*Pcase\s*$/pcase(`')/I
s/^\s*Usect\s*$/usect()/I
s/^\s*Csect\s*\((.*)\)\s*$/csect(`\1')/I
s/^\s*End\s+pcase\s*$/end_pcase()/I
s/^\s*Askfor\s+(\d+)\s+(\w+)\s+from\s+(\w+)\s*$/askfor(`\1',`\2',`\3')/I
s/^\s*Putwork\s+(\w+)\s*=\s*(.*)$/putwork(`\1',`\2')/I
s/^\s*(\d+)\s+End\s+askfor\s*$/end_askfor(`\1')/I
""".replace("@TYPES@", _TYPES)

_COMPILED: SedProgram | None = None
_COMPILE_LOCK = threading.Lock()


def _program() -> SedProgram:
    # Double-checked lazy init: concurrent force_translate calls must
    # not observe (or both overwrite) a half-published program.  The
    # compiled program itself is safe to share — SedProgram.run keeps
    # all per-run state local.
    global _COMPILED
    program = _COMPILED
    if program is None:
        with _COMPILE_LOCK:
            program = _COMPILED
            if program is None:
                program = SedProgram(FORCE_SED_SCRIPT)
                _COMPILED = program
    return program


def compiled_force_program() -> SedProgram:
    """The compiled Force translation script (shared, reentrant).

    Public for tools that need rule-level access — the static
    analyzer's silent-keyword lint replays single lines through it.
    """
    return _program()


def translate_force_source(source: str) -> str:
    """Run the Force sed script over ``source``.

    Comment lines (``C``, ``*`` or ``!`` in column one) are protected
    from rewriting by a pre-pass rather than script addresses, keeping
    the rule script readable.
    """
    program = _program()
    out_lines: list[str] = []
    for line in source.split("\n"):
        if line[:1] in ("C", "c", "*", "!"):
            out_lines.append(line)
            continue
        edited = program.run(line + "\n")
        # Single-line runs always produce exactly one line back.
        out_lines.append(edited[:-1] if edited.endswith("\n") else edited)
    return "\n".join(out_lines)
