"""A sed-dialect stream editor engine.

Executes a parsed script over an input text line by line, maintaining
the pattern space exactly like sed: each cycle reads a line, applies
every matching command in order, then (unless deleted or suppressed)
emits the pattern space.

Supported grammar per script line (blank lines and ``#`` comments are
skipped)::

    [address[,address]][!]command

    address  := NUMBER | $ | /regex/
    command  := s/regex/replacement/[g][p][I]
              | y/source-chars/dest-chars/
              | d | p | q | =
              | i\\ text   (insert before)
              | a\\ text   (append after)
              | c\\ text   (replace pattern space)
              | h | H | g | G | x          (hold space)
              | :label | b [label] | t [label]   (control flow)

Replacements understand ``&`` (whole match), ``\\1``–``\\9`` and ``\\&``.
Any punctuation character may serve as the ``s`` delimiter.  ``b``
without a label ends the cycle for this line; ``t`` branches only if
an ``s`` command substituted since the line was read (or the last
``t``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro._util.errors import ForceError


class SedError(ForceError):
    """Malformed sed script or execution failure."""


# ----------------------------------------------------------------------
# addresses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Address:
    kind: str                     # 'line' | 'last' | 'regex'
    line: int = 0
    regex: re.Pattern | None = None

    def matches(self, text: str, lineno: int, is_last: bool) -> bool:
        if self.kind == "line":
            return lineno == self.line
        if self.kind == "last":
            return is_last
        assert self.regex is not None
        return self.regex.search(text) is not None


@dataclass
class _Command:
    name: str
    addr1: _Address | None = None
    addr2: _Address | None = None
    negate: bool = False
    # s/y payloads
    pattern: re.Pattern | None = None
    replacement: str = ""
    flag_global: bool = False
    flag_print: bool = False
    # y payloads
    table: dict[int, int] | None = None
    # i/a/c payload
    text: str = ""

    def selected(self, line: str, lineno: int, is_last: bool,
                 in_range: dict[int, bool], key: int) -> bool:
        """Address match; range state lives in the caller's ``in_range``
        map (keyed by command position) so one compiled program can run
        concurrently from several threads."""
        if self.addr1 is None:
            hit = True
        elif self.addr2 is None:
            hit = self.addr1.matches(line, lineno, is_last)
        else:
            # Two-address range, sed style.
            if not in_range.get(key, False):
                if self.addr1.matches(line, lineno, is_last):
                    in_range[key] = True
                    hit = True
                    # A range can close on the same line only for
                    # line-number second addresses <= current.
                    if self.addr2.kind == "line" and self.addr2.line <= lineno:
                        in_range[key] = False
                else:
                    hit = False
            else:
                hit = True
                if self.addr2.matches(line, lineno, is_last):
                    in_range[key] = False
        return hit != self.negate


def _compile_replacement(repl: str) -> str:
    r"""Convert sed replacement syntax to Python re.sub syntax.

    sed's ``&`` becomes ``\g<0>``; ``\&`` a literal ``&``; ``\1`` stays.
    Characters special to Python replacements are escaped.
    """
    out: list[str] = []
    i = 0
    while i < len(repl):
        ch = repl[i]
        if ch == "\\" and i + 1 < len(repl):
            nxt = repl[i + 1]
            if nxt.isdigit():
                out.append("\\" + nxt)
            elif nxt == "&":
                out.append("&")
            elif nxt == "\\":
                out.append("\\\\")
            elif nxt == "n":
                out.append("\n")
            else:
                out.append(re.escape(nxt) if nxt != "g" else "\\g")
            i += 2
            continue
        if ch == "&":
            out.append("\\g<0>")
            i += 1
            continue
        if ch == "\\":
            out.append("\\\\")
            i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


class SedProgram:
    """A compiled sed script, reusable over many inputs."""

    def __init__(self, script: str) -> None:
        self.commands: list[_Command] = []
        for raw in script.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            self.commands.append(self._parse_command(line))

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------
    def _parse_command(self, line: str) -> _Command:
        pos = 0
        addr1, pos = self._parse_address(line, pos)
        addr2 = None
        if addr1 is not None and pos < len(line) and line[pos] == ",":
            addr2, pos = self._parse_address(line, pos + 1)
            if addr2 is None:
                raise SedError(f"missing second address in {line!r}")
        negate = False
        while pos < len(line) and line[pos] in " \t":
            pos += 1
        if pos < len(line) and line[pos] == "!":
            negate = True
            pos += 1
        while pos < len(line) and line[pos] in " \t":
            pos += 1
        if pos >= len(line):
            raise SedError(f"missing command in {line!r}")
        cmd_char = line[pos]
        rest = line[pos + 1:]
        command = _Command(name=cmd_char, addr1=addr1, addr2=addr2,
                           negate=negate)
        if cmd_char == "s":
            self._parse_substitute(command, rest, line)
        elif cmd_char == "y":
            self._parse_transliterate(command, rest, line)
        elif cmd_char in "dpq=hHgGx":
            if rest.strip():
                raise SedError(f"trailing garbage after {cmd_char!r} "
                               f"in {line!r}")
        elif cmd_char in "iac":
            text = rest
            if text.startswith("\\"):
                text = text[1:]
            command.text = text.lstrip(" \t")
        elif cmd_char == ":":
            if command.addr1 is not None:
                raise SedError(f"label cannot take an address: {line!r}")
            command.text = rest.strip()
            if not command.text:
                raise SedError(f"empty label in {line!r}")
        elif cmd_char in "bt":
            command.text = rest.strip()    # may be empty: end of cycle
        else:
            raise SedError(f"unknown command {cmd_char!r} in {line!r}")
        return command

    def _parse_address(self, line: str, pos: int):
        while pos < len(line) and line[pos] in " \t":
            pos += 1
        if pos >= len(line):
            return None, pos
        ch = line[pos]
        if ch.isdigit():
            end = pos
            while end < len(line) and line[end].isdigit():
                end += 1
            return _Address("line", line=int(line[pos:end])), end
        if ch == "$":
            return _Address("last"), pos + 1
        if ch == "/":
            end = pos + 1
            while end < len(line):
                if line[end] == "\\":
                    end += 2
                    continue
                if line[end] == "/":
                    break
                end += 1
            if end >= len(line):
                raise SedError(f"unterminated address regex in {line!r}")
            pattern = line[pos + 1:end].replace("\\/", "/")
            try:
                return _Address("regex", regex=re.compile(pattern)), end + 1
            except re.error as exc:
                raise SedError(f"bad address regex {pattern!r}: {exc}") \
                    from exc
        return None, pos

    def _split_delimited(self, text: str, line: str, parts: int):
        if not text:
            raise SedError(f"missing delimiter in {line!r}")
        delim = text[0]
        fields: list[str] = []
        current: list[str] = []
        i = 1
        while i < len(text) and len(fields) < parts:
            ch = text[i]
            if ch == "\\" and i + 1 < len(text) and text[i + 1] == delim:
                current.append(delim)
                i += 2
                continue
            if ch == delim:
                fields.append("".join(current))
                current = []
                i += 1
                continue
            current.append(ch)
            i += 1
        if len(fields) < parts:
            raise SedError(f"unterminated command in {line!r}")
        return fields, text[i:]

    def _parse_substitute(self, command: _Command, rest: str,
                          line: str) -> None:
        (pattern, replacement), tail = self._split_delimited(rest, line, 2)
        flags = 0
        for flag in tail.strip():
            if flag == "g":
                command.flag_global = True
            elif flag == "p":
                command.flag_print = True
            elif flag == "I":
                flags |= re.IGNORECASE
            else:
                raise SedError(f"unknown s flag {flag!r} in {line!r}")
        try:
            command.pattern = re.compile(pattern, flags)
        except re.error as exc:
            raise SedError(f"bad regex {pattern!r}: {exc}") from exc
        command.replacement = _compile_replacement(replacement)

    def _parse_transliterate(self, command: _Command, rest: str,
                             line: str) -> None:
        (src, dst), tail = self._split_delimited(rest, line, 2)
        if tail.strip():
            raise SedError(f"trailing garbage after y in {line!r}")
        if len(src) != len(dst):
            raise SedError(f"y: source/dest lengths differ in {line!r}")
        command.table = {ord(s): ord(d) for s, d in zip(src, dst)}

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, text: str, *, suppress: bool = False) -> str:
        """Apply the script to ``text`` and return the edited result.

        ``suppress`` mirrors ``sed -n``: only explicit ``p`` output.
        """
        if not text:
            return ""
        in_range: dict[int, bool] = {}
        labels = {c.text: i for i, c in enumerate(self.commands)
                  if c.name == ":"}
        lines = text.split("\n")
        # A trailing newline produces a final empty chunk; treat the
        # input as a sequence of lines without it.
        if text.endswith("\n"):
            lines = lines[:-1]
        out: list[str] = []
        hold_space = ""
        quit_requested = False
        total = len(lines)
        for lineno, pattern_space in enumerate(lines, start=1):
            is_last = lineno == total
            deleted = False
            substituted = False
            inserted_after: list[str] = []
            index = 0
            steps = 0
            while index < len(self.commands):
                key = index
                command = self.commands[index]
                index += 1
                steps += 1
                if steps > 100_000:
                    raise SedError("branching loop did not terminate")
                name = command.name
                if name == ":":
                    continue
                if not command.selected(pattern_space, lineno, is_last,
                                        in_range, key):
                    continue
                if name == "s":
                    count = 0 if command.flag_global else 1
                    new, nsubs = command.pattern.subn(
                        command.replacement, pattern_space, count=count)
                    pattern_space = new
                    if nsubs:
                        substituted = True
                        if command.flag_print:
                            out.append(pattern_space)
                elif name == "y":
                    pattern_space = pattern_space.translate(command.table)
                elif name == "d":
                    deleted = True
                    break
                elif name == "p":
                    out.append(pattern_space)
                elif name == "=":
                    out.append(str(lineno))
                elif name == "i":
                    out.append(command.text)
                elif name == "a":
                    inserted_after.append(command.text)
                elif name == "c":
                    pattern_space = command.text
                elif name == "q":
                    quit_requested = True
                    break
                elif name == "h":
                    hold_space = pattern_space
                elif name == "H":
                    hold_space = hold_space + "\n" + pattern_space
                elif name == "g":
                    pattern_space = hold_space
                elif name == "G":
                    pattern_space = pattern_space + "\n" + hold_space
                elif name == "x":
                    pattern_space, hold_space = hold_space, pattern_space
                elif name in ("b", "t"):
                    if name == "t":
                        if not substituted:
                            continue
                        substituted = False
                    if not command.text:
                        break          # end the cycle for this line
                    if command.text not in labels:
                        raise SedError(f"undefined label {command.text!r}")
                    index = labels[command.text]
            if not deleted and not suppress:
                out.append(pattern_space)
            out.extend(inserted_after)
            if quit_requested:
                break
        if not out:
            return ""
        return "\n".join(out) + "\n"
