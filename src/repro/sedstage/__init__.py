"""Stage 1 of the Force pipeline: a sed-style stream editor.

§4.3 of the paper: *"The stream editor sed translates the Force syntax
into parameterized function macros"*.  This package provides a sed
dialect engine (:mod:`repro.sedstage.engine`) and the Force translation
rule script (:mod:`repro.sedstage.force_rules`) that rewrites Force
statements (``Barrier``, ``Selfsched DO`` …) into macro calls consumed
by the m4 stage.

Dialect notes: patterns are Python regular expressions (documented in
README — the original used BREs); the command set is ``s``, ``y``,
``d``, ``p``, ``q``, ``=``, ``i``/``a``/``c`` with numeric, ``$`` and
regex addresses, ranges, and ``!`` negation.
"""

from repro.sedstage.engine import SedProgram, SedError
from repro.sedstage.force_rules import (
    FORCE_SED_SCRIPT,
    compiled_force_program,
    translate_force_source,
)

__all__ = [
    "SedProgram",
    "SedError",
    "FORCE_SED_SCRIPT",
    "compiled_force_program",
    "translate_force_source",
]
