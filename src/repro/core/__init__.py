"""Public API of the Force reproduction.

Most users need only this module::

    from repro.core import force_compile_and_run, get_machine

    result = force_compile_and_run(source, get_machine("hep"), nproc=8)
    print(result.output, result.makespan)

For writing Force-style parallel programs directly in Python (real
threads, no Fortran), see :mod:`repro.runtime`.
"""

from repro.machines import (
    ALLIANT_FX8,
    CRAY_2,
    ENCORE_MULTIMAX,
    FLEX_32,
    HEP,
    MACHINES,
    MachineModel,
    SEQUENT_BALANCE,
    get_machine,
    machine_names,
)
from repro.pipeline import (
    RunResult,
    TranslationResult,
    force_compile_and_run,
    force_run,
    force_translate,
)
from repro.core import programs
from repro._util.errors import (
    ForceError,
    ForceSyntaxError,
    FortranError,
    MacroError,
    MachineError,
    SimulationError,
)

__all__ = [
    "ALLIANT_FX8",
    "CRAY_2",
    "ENCORE_MULTIMAX",
    "FLEX_32",
    "HEP",
    "MACHINES",
    "MachineModel",
    "SEQUENT_BALANCE",
    "get_machine",
    "machine_names",
    "RunResult",
    "TranslationResult",
    "force_compile_and_run",
    "force_run",
    "force_translate",
    "programs",
    "ForceError",
    "ForceSyntaxError",
    "FortranError",
    "MacroError",
    "MachineError",
    "SimulationError",
]
