"""A library of Force sample programs.

These are the workloads the tests, examples and benchmarks share.  All
are written in the Force dialect documented in
:mod:`repro.sedstage.force_rules` (statements at column 7, Force
keywords capitalised) and produce deterministic output, so the
portability experiment (E1) can diff their output across machines.

Each entry is parameterised with ``str.format``-style fields where a
size matters; ``render(name, **params)`` fills the defaults in.
"""

from __future__ import annotations

from repro._util.text import strip_margin

#: name -> (source template, default parameters)
SAMPLES: dict[str, tuple[str, dict]] = {}


def register(name: str, template: str, **defaults) -> None:
    SAMPLES[name] = (strip_margin(template), defaults)


def render(name: str, **params) -> str:
    """Instantiate a sample program with the given parameters."""
    template, defaults = SAMPLES[name]
    merged = dict(defaults)
    merged.update(params)
    return template.format(**merged)


def sample_names() -> list[str]:
    return list(SAMPLES)


# ----------------------------------------------------------------------
# 1. Critical-section sum: every construct's "hello world".
# ----------------------------------------------------------------------
register("sum_critical", """
    Force SUMMER of NP ident ME
    Shared INTEGER TOTAL
    End declarations
    Barrier
          TOTAL = 0
    End barrier
    Selfsched DO 100 K = 1, {n}
          Critical LCK
          TOTAL = TOTAL + K
          End critical
    100 End Selfsched DO
    Barrier
          WRITE(*,*) "TOTAL", TOTAL
    End barrier
    Join
          END
""", n=50)

# ----------------------------------------------------------------------
# 2. Jacobi relaxation on a 1-D rod: the classic numerical kernel the
#    Force was built for.  Prescheduled DOALL + barrier per sweep.
# ----------------------------------------------------------------------
register("jacobi", """
    Force JACOBI of NP ident ME
    Shared REAL U({n}), UNEW({n})
    Shared INTEGER NSIZE
    Private INTEGER I, ITER
    End declarations
    Barrier
          NSIZE = {n}
          DO 5 I = 1, NSIZE
            U(I) = 0.0
    5     CONTINUE
          U(1) = 100.0
          U(NSIZE) = 100.0
    End barrier
          DO 50 ITER = 1, {iters}
          Presched DO 10 I = 2, NSIZE - 1
            UNEW(I) = 0.5 * (U(I - 1) + U(I + 1))
    10    End presched DO
          Barrier
          End barrier
          Presched DO 20 I = 2, NSIZE - 1
            U(I) = UNEW(I)
    20    End presched DO
          Barrier
          End barrier
    50    CONTINUE
    Barrier
          WRITE(*,*) "PROBE", NINT(1000.0 * U(4)), NINT(1000.0 * U(NSIZE / 2))
    End barrier
    Join
          END
""", n=16, iters=30)

# ----------------------------------------------------------------------
# 3. Dot product with selfscheduled distribution and a critical
#    reduction.
# ----------------------------------------------------------------------
register("dot_product", """
    Force DOTPRD of NP ident ME
    Shared REAL X({n}), Y({n}), RESULT
    Private REAL PART
    Private INTEGER I
    End declarations
    Barrier
          RESULT = 0.0
          DO 5 I = 1, {n}
            X(I) = FLOAT(I)
            Y(I) = 2.0
    5     CONTINUE
    End barrier
          PART = 0.0
    Selfsched DO 100 I = 1, {n}
          PART = PART + X(I) * Y(I)
    100 End Selfsched DO
          Critical RSUM
          RESULT = RESULT + PART
          End critical
    Barrier
          WRITE(*,*) "DOT", NINT(RESULT)
    End barrier
    Join
          END
""", n=40)

# ----------------------------------------------------------------------
# 4. Producer/consumer pipeline over an asynchronous variable.
# ----------------------------------------------------------------------
register("pipeline", """
    Force PIPE of NP ident ME
    Async INTEGER CHAN
    Shared INTEGER SINK
    Private INTEGER V, K
    End declarations
    Barrier
          SINK = 0
    End barrier
          IF (ME .EQ. 1) THEN
            DO 10 K = 1, {items}
          Produce CHAN = K * K
    10      CONTINUE
          END IF
          IF (ME .EQ. 2) THEN
            DO 20 K = 1, {items}
          Consume CHAN into V
          SINK = SINK + V
    20      CONTINUE
          END IF
    Barrier
          WRITE(*,*) "SINK", SINK
    End barrier
    Join
          END
""", items=8)

# ----------------------------------------------------------------------
# 5. Pcase: independent sections, one conditional.
# ----------------------------------------------------------------------
register("sections", """
    Force SECT of NP ident ME
    Shared INTEGER R(4)
    End declarations
    Pcase
    Usect
          R(1) = 10
    Usect
          R(2) = 20
    Usect
          R(3) = 30
      Csect (NP .GE. 1)
          R(4) = 40
    End pcase
    Barrier
          WRITE(*,*) R(1) + R(2) + R(3) + R(4)
    End barrier
    Join
          END
""")

# ----------------------------------------------------------------------
# 6. Askfor: dynamic tree-shaped work (each unit may spawn two more).
# ----------------------------------------------------------------------
register("askfor_tree", """
    Force TREE of NP ident ME
    Taskq WORK({qsize})
    Shared INTEGER COUNT
    Private INTEGER W, J, DUMMY
    End declarations
    Barrier
          COUNT = 0
          CALL FRCQPT("WORK", {depth})
    End barrier
          DUMMY = 0
    Askfor 300 W from WORK
          IF (W .GT. 1) THEN
          Putwork WORK = W - 1
          Putwork WORK = W - 1
          END IF
          DO 10 J = 1, {work}
            DUMMY = DUMMY + 1
    10    CONTINUE
          Critical CNT
          COUNT = COUNT + 1
          End critical
    300 End askfor
    Barrier
          WRITE(*,*) "NODES", COUNT
    End barrier
    Join
          END
""", qsize=512, depth=5, work=1)

# ----------------------------------------------------------------------
# 7. Doubly nested DOALL: matrix scale, both scheduling flavours.
# ----------------------------------------------------------------------
register("matrix_scale", """
    Force MSCALE of NP ident ME
    Shared INTEGER A({rows}, {cols}), CK
    End declarations
    Presched DO2 20 I = 1, {rows}; J = 1, {cols}
          A(I, J) = I + J
    20 End presched DO2
    Barrier
    End barrier
    Selfsched DO2 30 I = 1, {rows}; J = 1, {cols}
          A(I, J) = A(I, J) * 2
    30 End selfsched DO2
    Barrier
          CK = A(1, 1) + A({rows}, {cols}) + A(2, 1)
          WRITE(*,*) "CHECK", CK
    End barrier
    Join
          END
""", rows=4, cols=5)

# ----------------------------------------------------------------------
# 8. LU decomposition without pivoting (Gaussian elimination), the
#    numerical-linear-algebra workload of the Force group: the outer
#    elimination step is sequential, each update sweep is a
#    prescheduled DOALL over rows, synchronised by a barrier.
# ----------------------------------------------------------------------
register("lu_decomposition", """
    Force LUDEC of NP ident ME
    Shared REAL A({n}, {n}), CHKSUM
    Shared INTEGER NSIZE
    Private INTEGER I, J, K
    End declarations
    Barrier
          NSIZE = {n}
          DO 6 J = 1, NSIZE
          DO 5 I = 1, NSIZE
            A(I, J) = 1.0 / FLOAT(I + J)
            IF (I .EQ. J) A(I, J) = A(I, J) + FLOAT(NSIZE)
    5     CONTINUE
    6     CONTINUE
    End barrier
          DO 50 K = 1, NSIZE - 1
          Presched DO 10 I = K + 1, NSIZE
            A(I, K) = A(I, K) / A(K, K)
            DO 20 J = K + 1, NSIZE
              A(I, J) = A(I, J) - A(I, K) * A(K, J)
    20      CONTINUE
    10    End presched DO
          Barrier
          End barrier
    50    CONTINUE
    Barrier
          CHKSUM = 0.0
          DO 60 K = 1, NSIZE
            CHKSUM = CHKSUM + A(K, K)
    60    CONTINUE
          WRITE(*,*) "TRACEU", NINT(1000.0 * CHKSUM)
    End barrier
    Join
          END
""", n=8)

# ----------------------------------------------------------------------
# 9. Parallel Force subroutine called by all processes.
# ----------------------------------------------------------------------
register("subroutine_call", """
    Force DRIVERP of NP ident ME
    Shared INTEGER BASE
    End declarations
    Barrier
          BASE = 1000
    End barrier
    Forcecall ADDUP(BASE)
    Join
          END
    Forcesub ADDUP(START) of NP ident ME
    Shared INTEGER ACC
    Private INTEGER K
    End declarations
    Barrier
          ACC = START
    End barrier
    Selfsched DO 100 K = 1, 10
          Critical ALCK
          ACC = ACC + K
          End critical
    100 End Selfsched DO
    Barrier
          WRITE(*,*) "ACC", ACC
    End barrier
          RETURN
          END
""")
