"""Shared git-revision stamping.

Facts documents and benchmark results both record the revision they
were produced at so consumers can detect staleness: ``force run
--facts`` refuses a facts file whose ``git_revision`` no longer
matches the checkout (the race verdicts were computed for different
source), and BENCH_results.json entries are comparable only within a
revision.
"""

from __future__ import annotations

import subprocess
from pathlib import Path


def git_revision(root: Path | None = None, *,
                 warn: bool = True) -> str | None:
    """The current short git revision, or None (optionally warning).

    ``root`` defaults to the checkout this package lives in — running
    from an unrelated directory must not stamp that directory's
    revision.  When ``git rev-parse`` is unavailable or fails
    (tarball install, missing git, corrupt checkout), the result
    degrades to ``None`` instead of crashing.
    """
    if root is None:
        root = Path(__file__).resolve().parents[2]
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired) as exc:
        if warn:
            print(f"warning: cannot stamp git revision ({exc})")
        return None
    if proc.returncode != 0:
        if warn:
            print("warning: cannot stamp git revision "
                  f"(git rev-parse failed: {proc.stderr.strip()})")
        return None
    return proc.stdout.strip() or None
