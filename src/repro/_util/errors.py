"""Exception hierarchy for the Force reproduction.

Every subsystem raises a subclass of :class:`ForceError` so callers can
catch reproduction-level failures without swallowing genuine Python bugs.
"""

from __future__ import annotations


class ForceError(Exception):
    """Base class for all errors raised by the ``repro`` packages."""


class ForceSyntaxError(ForceError):
    """A Force source program is malformed.

    Carries the source line number (1-based) when known so that
    diagnostics can point back at user code.
    """

    def __init__(self, message: str, *, line: int | None = None,
                 filename: str | None = None) -> None:
        self.line = line
        self.filename = filename
        prefix = ""
        if filename is not None:
            prefix += f"{filename}:"
        if line is not None:
            prefix += f"{line}:"
        if prefix:
            prefix += " "
        super().__init__(prefix + message)


class MacroError(ForceError):
    """The macro processor hit an unrecoverable condition.

    Examples: unbalanced quotes, ``popdef`` on an undefined macro,
    expansion recursion past the configured limit.
    """


class FortranError(ForceError):
    """Error from the Fortran front end or interpreter."""

    def __init__(self, message: str, *, line: int | None = None,
                 unit: str | None = None) -> None:
        self.line = line
        self.unit = unit
        prefix = ""
        if unit is not None:
            prefix += f"in {unit}: "
        if line is not None:
            prefix += f"line {line}: "
        super().__init__(prefix + message)


class ForceDeadlockError(ForceError):
    """A construct deadline expired: the force is parked and cannot
    make progress.

    Raised by the native runtime when a process blocks inside a
    construct (barrier, critical, selfsched, askfor, async variable)
    longer than ``Force(..., construct_timeout=...)`` allows, or when
    :meth:`Force.run`'s global join deadline expires.  Carries the
    construct the process was parked on so chaos runs and CLI users
    see *where* the program hung, not just that it did.
    """

    def __init__(self, message: str, *, construct: str | None = None,
                 me: int | None = None,
                 timeout: float | None = None) -> None:
        self.construct = construct
        self.me = me
        self.timeout = timeout
        super().__init__(message)

    def __reduce__(self):
        # Keyword-only constructor args defeat the default
        # (cls, self.args) pickling — spell out the rebuild so the
        # process backend can ship this across the wire intact.
        return (_rebuild_deadlock,
                (str(self), self.construct, self.me, self.timeout))


class ForceWorkerDied(ForceError):
    """A force process died abruptly and stranded a construct.

    Raised when the runtime detects that a peer holding construct
    state (an askfor work item, a selfscheduled-loop membership) is no
    longer alive — the structured alternative to hanging until the
    join timeout.  Names the dead process and the construct where the
    death was detected.
    """

    def __init__(self, me: int, construct: str,
                 detail: str = "") -> None:
        self.me = me
        self.construct = construct
        self.detail = detail
        extra = f" ({detail})" if detail else ""
        super().__init__(
            f"process {me} died without releasing {construct}{extra}; "
            "poisoning the force instead of hanging")

    def __reduce__(self):
        # The message is derived, not a constructor arg: rebuild from
        # the structured fields so pickling round-trips.
        return (ForceWorkerDied, (self.me, self.construct, self.detail))


def _rebuild_deadlock(message: str, construct, me, timeout):
    """Pickle helper: reconstruct a :class:`ForceDeadlockError`."""
    return ForceDeadlockError(message, construct=construct, me=me,
                              timeout=timeout)


class SimulationError(ForceError):
    """The discrete-event simulator detected an inconsistency.

    Most commonly: deadlock (no runnable process and simulated time
    cannot advance), or a process finishing while still holding a lock.
    """


class SimDeadlockError(SimulationError):
    """The simulation deadlocked or exceeded its wall-clock deadline.

    Distinct from other :class:`SimulationError` conditions so the CLI
    can map it to the deadlock/timeout exit status (3).
    """


class MachineError(ForceError):
    """A machine model constraint was violated.

    Examples: shared variable placed outside the shared page region on
    the Encore, sharing not page-aligned on the Alliant, lock resource
    exhaustion on machines where locks are scarce.
    """
