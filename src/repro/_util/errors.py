"""Exception hierarchy for the Force reproduction.

Every subsystem raises a subclass of :class:`ForceError` so callers can
catch reproduction-level failures without swallowing genuine Python bugs.
"""

from __future__ import annotations


class ForceError(Exception):
    """Base class for all errors raised by the ``repro`` packages."""


class ForceSyntaxError(ForceError):
    """A Force source program is malformed.

    Carries the source line number (1-based) when known so that
    diagnostics can point back at user code.
    """

    def __init__(self, message: str, *, line: int | None = None,
                 filename: str | None = None) -> None:
        self.line = line
        self.filename = filename
        prefix = ""
        if filename is not None:
            prefix += f"{filename}:"
        if line is not None:
            prefix += f"{line}:"
        if prefix:
            prefix += " "
        super().__init__(prefix + message)


class MacroError(ForceError):
    """The macro processor hit an unrecoverable condition.

    Examples: unbalanced quotes, ``popdef`` on an undefined macro,
    expansion recursion past the configured limit.
    """


class FortranError(ForceError):
    """Error from the Fortran front end or interpreter."""

    def __init__(self, message: str, *, line: int | None = None,
                 unit: str | None = None) -> None:
        self.line = line
        self.unit = unit
        prefix = ""
        if unit is not None:
            prefix += f"in {unit}: "
        if line is not None:
            prefix += f"line {line}: "
        super().__init__(prefix + message)


class SimulationError(ForceError):
    """The discrete-event simulator detected an inconsistency.

    Most commonly: deadlock (no runnable process and simulated time
    cannot advance), or a process finishing while still holding a lock.
    """


class MachineError(ForceError):
    """A machine model constraint was violated.

    Examples: shared variable placed outside the shared page region on
    the Encore, sharing not page-aligned on the Alliant, lock resource
    exhaustion on machines where locks are scarce.
    """
