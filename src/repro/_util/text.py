"""Small text utilities used by the preprocessor stages."""

from __future__ import annotations

import textwrap
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A position in an input file: 1-based line, optional filename."""

    line: int
    filename: str | None = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.filename:
            return f"{self.filename}:{self.line}"
        return f"line {self.line}"


def strip_margin(block: str) -> str:
    """Dedent a triple-quoted source block and drop the leading newline.

    Convenience for writing Force/Fortran programs inline in tests and
    examples without fighting indentation.
    """
    out = textwrap.dedent(block)
    if out.startswith("\n"):
        out = out[1:]
    return out
