"""Internal utilities shared across the reproduction packages."""

from repro._util.errors import (
    ForceError,
    ForceSyntaxError,
    MacroError,
    FortranError,
    SimulationError,
    MachineError,
)
from repro._util.text import SourceLocation, strip_margin

__all__ = [
    "ForceError",
    "ForceSyntaxError",
    "MacroError",
    "FortranError",
    "SimulationError",
    "MachineError",
    "SourceLocation",
    "strip_margin",
]
